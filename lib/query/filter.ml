open Bounds_model

type substring = {
  initial : string option;
  any : string list;
  final : string option;
}

type t =
  | Present of Attr.t
  | Eq of Attr.t * string
  | Ge of Attr.t * string
  | Le of Attr.t * string
  | Substr of Attr.t * substring
  | And of t list
  | Or of t list
  | Not of t

let class_eq c = Eq (Attr.object_class, Oclass.to_string c)

let norm = String.lowercase_ascii

(* -1 / 0 / +1 ordering used by Ge and Le: numeric when possible. *)
let order_cmp x y =
  match (int_of_string_opt (String.trim x), int_of_string_opt (String.trim y)) with
  | Some a, Some b -> Int.compare a b
  | _ -> String.compare (norm x) (norm y)

let contains_from hay pos needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = if i + nn > nh then None
    else if String.sub hay i nn = needle then Some (i + nn)
    else go (i + 1)
  in
  if nn = 0 then Some pos else go pos

let substr_matches { initial; any; final } raw =
  let s = norm raw in
  let n = String.length s in
  let pos =
    match initial with
    | None -> Some 0
    | Some i ->
        let i = norm i in
        if String.length i <= n && String.sub s 0 (String.length i) = i then
          Some (String.length i)
        else None
  in
  let pos =
    List.fold_left
      (fun pos mid ->
        match pos with
        | None -> None
        | Some p -> contains_from s p (norm mid))
      pos any
  in
  match (pos, final) with
  | None, _ -> false
  | Some _, None -> true
  | Some p, Some f ->
      let f = norm f in
      let nf = String.length f in
      nf <= n - p && String.sub s (n - nf) nf = f

let rec matches f e =
  match f with
  | Present a -> Entry.values e a <> []
  | Eq (a, v) ->
      let v = norm v in
      List.exists (fun x -> norm (Value.to_string x) = v) (Entry.values e a)
  | Ge (a, v) ->
      List.exists (fun x -> order_cmp (Value.to_string x) v >= 0) (Entry.values e a)
  | Le (a, v) ->
      List.exists (fun x -> order_cmp (Value.to_string x) v <= 0) (Entry.values e a)
  | Substr (a, sub) ->
      List.exists (fun x -> substr_matches sub (Value.to_string x)) (Entry.values e a)
  | And fs -> List.for_all (fun f -> matches f e) fs
  | Or fs -> List.exists (fun f -> matches f e) fs
  | Not f -> not (matches f e)

let rec size = function
  | Present _ | Eq _ | Ge _ | Le _ | Substr _ -> 1
  | And fs | Or fs -> 1 + List.fold_left (fun n f -> n + size f) 0 fs
  | Not f -> 1 + size f

(* RFC 2254 escaping: specials become a backslash and two hex digits, so
   the printed form survives a reparse byte-for-byte. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '(' | ')' | '*' | '\\' | '\000' ->
          Buffer.add_string buf (Printf.sprintf "\\%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_string = function
  | Present a -> Printf.sprintf "(%s=*)" (Attr.to_string a)
  | Eq (a, v) -> Printf.sprintf "(%s=%s)" (Attr.to_string a) (escape v)
  | Ge (a, v) -> Printf.sprintf "(%s>=%s)" (Attr.to_string a) (escape v)
  | Le (a, v) -> Printf.sprintf "(%s<=%s)" (Attr.to_string a) (escape v)
  | Substr (a, { initial; any; final }) ->
      let parts =
        (match initial with Some i -> escape i | None -> "")
        :: (List.map escape any @ [ (match final with Some f -> escape f | None -> "") ])
      in
      Printf.sprintf "(%s=%s)" (Attr.to_string a) (String.concat "*" parts)
  | And fs -> Printf.sprintf "(&%s)" (String.concat "" (List.map to_string fs))
  | Or fs -> Printf.sprintf "(|%s)" (String.concat "" (List.map to_string fs))
  | Not f -> Printf.sprintf "(!%s)" (to_string f)

let pp ppf f = Format.pp_print_string ppf (to_string f)

let rec equal f g =
  match (f, g) with
  | Present a, Present b -> Attr.equal a b
  | Eq (a, v), Eq (b, w) | Ge (a, v), Ge (b, w) | Le (a, v), Le (b, w) ->
      Attr.equal a b && String.equal v w
  | Substr (a, s1), Substr (b, s2) -> Attr.equal a b && s1 = s2
  | And fs, And gs | Or fs, Or gs ->
      List.length fs = List.length gs && List.for_all2 equal fs gs
  | Not f, Not g -> equal f g
  | (Present _ | Eq _ | Ge _ | Le _ | Substr _ | And _ | Or _ | Not _), _ -> false

let rec attributes = function
  | Present a | Eq (a, _) | Ge (a, _) | Le (a, _) | Substr (a, _) ->
      Attr.Set.singleton a
  | And fs | Or fs ->
      List.fold_left (fun s f -> Attr.Set.union s (attributes f)) Attr.Set.empty fs
  | Not f -> attributes f
