(** Value index: secondary (attribute, value) → rank-set index.

    Atomic equality and presence selections — in particular the ubiquitous
    [(objectClass=c)] selections produced by the Figure-4 translation —
    answer from a persistent map instead of a full entry scan.  {!Eval}
    uses the lookups for [Eq] and [Present] leaves and falls back to
    scanning for other assertion shapes; {!Plan} additionally uses the
    lazy per-attribute structures below to index [Ge]/[Le]/[Substr].
    Built in O(|val(D)|); the range and trigram indexes are built on
    first use per attribute (thread-safely), so paths that never issue an
    ordering or substring assertion never pay for them.

    Tables are keyed by interned integers ({!Intern}) and stored in
    persistent Patricia tries, so a version step shares all untouched
    postings structurally with its parent — stepping to the next version
    costs O(|Δ| · log) rather than O(|val(D)|) table copies.  Lookup-side
    keying never grows the intern pools: an assertion value that was
    never stored resolves to "no key" and the empty set.

    Every [card_*] function is an upper bound on the cardinality of the
    corresponding lookup (multi-valued attributes can contribute one
    posting per value to the same rank) and costs O(log) — they feed
    {!Plan}'s selectivity estimates without materializing a bitset. *)

open Bounds_model

type t

(** [create ?pool ix] — with a [pool], per-chunk hash tables are built
    over disjoint rank ranges and merged in chunk order, yielding tables
    identical to the sequential build. *)
val create : ?pool:Bounds_par.Pool.t -> Index.t -> t
val index : t -> Index.t

(** Ranks of entries holding the pair [(a, v)]; [v] is the raw assertion
    value, compared against the string rendering of stored values,
    case-insensitively (same semantics as [Filter.Eq]). *)
val lookup_eq : t -> Attr.t -> string -> Bitset.t

(** Ranks of entries with at least one value for [a]. *)
val lookup_present : t -> Attr.t -> Bitset.t

(** Ranks satisfying [Ge (a, v)] ([ge:true]) or [Le (a, v)] ([ge:false])
    — exactly [Filter.matches]'s semantics, including its split
    comparison relation (numeric iff both sides parse as integers):
    binary searches over per-attribute sorted-value arrays instead of a
    full entry scan. *)
val lookup_range : t -> ge:bool -> Attr.t -> string -> Bitset.t

(** A {e superset} of the ranks matching [Substr (a, sub)], obtained by
    intersecting trigram postings of the pattern's fragments; callers
    must re-verify candidates against the actual filter.  Falls back to
    presence when no fragment is at least three characters long. *)
val substr_candidates : t -> Attr.t -> Filter.substring -> Bitset.t

val card_eq : t -> Attr.t -> string -> int
val card_present : t -> Attr.t -> int
val card_range : t -> ge:bool -> Attr.t -> string -> int
val card_substr : t -> Attr.t -> Filter.substring -> int

(** {2 Incremental maintenance}

    Postings are entry ids internally, so an update invalidates only the
    keys it touches — not, as a rank-based table would, every posting
    behind the lowest shifted rank.  At snapshot-build time ({!create})
    every posting set is frozen into one sorted id array — the compact,
    cache-friendly representation the planner's bitset fills and
    cardinality probes sweep.  A {!Builder} thaws exactly the keys Δ
    touches back into count+list form, the mutable build representation,
    and {!Builder.seal} re-freezes that touched set — so a {e published}
    version only ever holds frozen postings, no matter how many update
    transactions produced it. *)

(** Accumulates one transaction's worth of posting edits against a base
    version.  Mirrors {!Index.Builder}: [of_version] is O(1) (the
    persistent tables are shared, the lazy per-attribute structures
    carry over minus the attributes Δ dirties), each op costs
    O(pairs · (log + postings-per-touched-key)), and [seal] publishes an
    immutable version re-freezing only the touched keys.  A builder is
    single-transaction scratch state: not thread-safe, and unusable
    after [seal]. *)
module Builder : sig
  type vindex := t
  type t

  val of_version : vindex -> t

  (** Ops refer to ids of the {e base} version (or ids inserted earlier
      in this same builder — same-transaction insert-then-delete is
      handled). *)
  val apply_op : t -> Update.op -> unit

  (** [seal ~index b] — [index] must be the matching post-transaction
      evaluation index. *)
  val seal : index:Index.t -> t -> vindex
end

(** [apply ~index ops t] — one-shot builder round-trip: the value index
    for the post-transaction version.  [index] must be the matching
    evaluation index (e.g. [Index.apply ops (Vindex.index t)]).
    O(|Δ| · log + touched-key re-freeze); everything untouched is shared
    with [t]. *)
val apply : index:Index.t -> Update.op list -> t -> t

(** [replace_entry ~index old_e new_e t] — attribute-level modification:
    unindex [old_e]'s pairs, index [new_e]'s.  [index] is the
    post-modification evaluation index. *)
val replace_entry : index:Index.t -> Entry.t -> Entry.t -> t -> t
