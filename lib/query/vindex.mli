(** Value index: secondary (attribute, value) → rank-set index.

    Atomic equality and presence selections — in particular the ubiquitous
    [(objectClass=c)] selections produced by the Figure-4 translation —
    answer from a hash table instead of a full entry scan.  {!Eval} uses
    the lookups for [Eq] and [Present] leaves and falls back to scanning
    for other assertion shapes.  Built in O(|val(D)|). *)

open Bounds_model

type t

(** [create ?pool ix] — with a [pool], per-chunk hash tables are built
    over disjoint rank ranges and merged in chunk order, yielding tables
    identical to the sequential build. *)
val create : ?pool:Bounds_par.Pool.t -> Index.t -> t
val index : t -> Index.t

(** Ranks of entries holding the pair [(a, v)]; [v] is the raw assertion
    value, compared against the string rendering of stored values,
    case-insensitively (same semantics as [Filter.Eq]). *)
val lookup_eq : t -> Attr.t -> string -> Bitset.t

(** Ranks of entries with at least one value for [a]. *)
val lookup_present : t -> Attr.t -> Bitset.t
