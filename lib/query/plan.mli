(** Cost-based physical plans for hierarchical selection queries (the §7
    "schema-aware query optimization" outlook item).

    {!plan} compiles a {!Query.t} against one {!Vindex} snapshot into an
    explicit physical plan; {!exec} runs it.  Compared with the {!Eval}
    interpreter:

    - [Eq]/[Present]/[Ge]/[Le] leaves answer from the value index ([Ge]/
      [Le] by binary search over per-attribute sorted-value arrays) and
      [Substr] prefilters through a trigram index, verifying only the
      surviving candidates — no leaf full-scans;
    - [And] evaluates its most selective conjunct (by index cardinality
      estimates) to a candidate set and applies the remaining conjuncts
      most selective first, each in the cheaper of two modes — intersect
      its materialized bitset, or verify it per surviving candidate —
      with an early exit once the candidate set drains;
    - [Not] inside a conjunction is pushed to the verify tail, so
      complements are taken late and narrow (a per-candidate test, not an
      O(|D|) complement set);
    - [Minus]/[Inter]/[Chi] skip their right operand when the left one is
      already empty.

    Plans record estimated and (after {!exec}) actual cardinalities per
    node; {!explain_lines}/{!pp_explain} render them for [--explain].

    Results are bit-identical to {!Eval.eval} / {!Naive_eval} — the
    [plan-vs-naive] fuzz oracle holds the two extensionally equal.

    {2 Memoized evaluation}

    A {!memo} hash-conses subquery results on their canonical
    {!Query.to_string} rendering, scoped to the [(index, vindex)] snapshot
    it was created from — the Figure-4 obligation set then evaluates each
    shared subquery (class selections, χ frames) exactly once per check.
    {!memo_eval} caches and must run sequentially; after a {!prewarm},
    {!memo_eval_ro} never writes and may be called from several domains
    concurrently.  Cached bitsets are shared: treat them as immutable. *)

type t

val plan : Vindex.t -> Query.t -> t

(** Execute, recording actual cardinalities on the plan's nodes.  The
    optional [pool] parallelizes the χ child/parent sweeps exactly as in
    {!Eval}. *)
val exec : ?pool:Bounds_par.Pool.t -> t -> Bitset.t

val query : t -> Query.t

(** [plan] + [exec] in one step. *)
val eval : ?pool:Bounds_par.Pool.t -> Vindex.t -> Query.t -> Bitset.t

val eval_ids :
  ?pool:Bounds_par.Pool.t -> Vindex.t -> Query.t -> Bounds_model.Entry.id list

val is_empty : ?pool:Bounds_par.Pool.t -> Vindex.t -> Query.t -> bool

(** One line per plan node, indented, with [est=]/[actual=] columns;
    [actual=skipped] marks nodes an early exit never ran. *)
val explain_lines : t -> string list

val pp_explain : Format.formatter -> t -> unit

(** {2 Memoization} *)

type memo

val memo_create : Vindex.t -> memo

(** Evaluate through the cache, filling it.  Sequential use only. *)
val memo_eval : ?pool:Bounds_par.Pool.t -> memo -> Query.t -> Bitset.t

(** Evaluate through the cache without writing it: cache misses are
    recomputed on the fly and discarded.  Safe to call concurrently from
    several domains once the writers are done. *)
val memo_eval_ro : ?pool:Bounds_par.Pool.t -> memo -> Query.t -> Bitset.t

(** [prewarm m qs] evaluates-and-caches every subquery occurring at least
    twice across [qs] (by canonical rendering), so a subsequent parallel
    [memo_eval_ro] fan-out over [qs] hits the cache for all shared
    work. *)
val prewarm : ?pool:Bounds_par.Pool.t -> memo -> Query.t list -> unit

(** [(hits, misses, entries)] — hits/misses count {!memo_eval} lookups
    only. *)
val memo_stats : memo -> int * int * int

(** [memo_apply ~vindex ~splices ops m] — carry the cache across an
    update instead of discarding it: [vindex] is the post-transaction
    value index (whose {!Vindex.index} is the post-transaction
    evaluation index) and [splices] the rank-space edits the transaction
    performed on the old index, in application order — exactly
    {!Index.Builder.splices} of the builder that produced it.  Entries
    for {e pointwise} queries (no χ anywhere — e.g. the class selections
    shared across the Figure-4 obligations) migrate: surviving verdicts
    shift to their new ranks by word-level bitset splicing (O(#splices ·
    n/64) per cached set, no per-member id translation), and each entry
    inserted by [ops] is admitted by one direct membership test.
    χ-containing entries are dropped — an insertion perturbs χ
    membership of arbitrary relatives of the insertion point, so only a
    rebuild is sound for them.  Hit/miss counters carry over. *)
val memo_apply :
  vindex:Vindex.t ->
  splices:Index.splice list ->
  Bounds_model.Update.op list ->
  memo ->
  memo

(** Cumulative [(migrated, dropped)] cache-entry counts across every
    {!memo_apply} in this memo's lineage. *)
val memo_migration_stats : memo -> int * int
