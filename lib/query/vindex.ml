open Bounds_model

(* Table keys are interned integers (see {!Intern}): the equality table
   is keyed by the id of ["attr\x00normalized-value"] in the [vkey]
   pool, presence/range/trigram tables by the attribute name's id in the
   [attr] pool.  Insertion-side keying uses [Intern.id] (the pair is
   entering the directory anyway); lookup-side keying uses
   [Intern.find_id], so hostile query constants never grow the pools and
   a miss short-circuits to the empty set without touching the map. *)

let norm = String.lowercase_ascii
let eq_key_str a nv = a ^ "\x00" ^ nv
let eq_key a nv = Intern.id Intern.vkey (eq_key_str a nv)
let eq_key_opt a nv = Intern.find_id Intern.vkey (eq_key_str a nv)
let attr_key a = Intern.id Intern.attr a
let attr_key_opt a = Intern.find_id Intern.attr a

(* Per-attribute sorted-value arrays for Ge/Le.  [Filter.order_cmp] is
   numeric iff BOTH sides parse as integers and falls back to a
   case-folded string compare otherwise, so the comparison relation is
   not a single total order over mixed values ("9" < "10" numerically,
   "10" < "2a" and "9" > "2a" as strings).  One sorted array cannot
   answer both regimes; three can:

   - [num]: values that parse as int, sorted numerically — matched
     against a numeric assertion value;
   - [nonnum]: the remaining values, sorted as normalized strings — a
     numeric assertion value compares with these as a string;
   - [all]: every value as a normalized string — a non-numeric assertion
     value compares with {e all} stored values as strings.

   Each element is a (value, id) pair; a multi-valued entry appears
   once per value, which is exactly [Filter.matches]'s exists-semantics
   once the ids land in a bitset. *)
type range_idx = {
  num_keys : int array; (* sorted; num_ids.(i) holds key num_keys.(i) *)
  num_ids : Entry.id array;
  nonnum_keys : string array;
  nonnum_ids : Entry.id array;
  all_keys : string array;
  all_ids : Entry.id array;
}

(* All postings are entry {e ids}, not ranks: an id survives any update
   that keeps the entry, whereas a single insertion shifts every rank
   behind it.  Lookups convert through the index's rank table on the way
   into a bitset — a constant-factor cost on the same O(result) walk —
   and in exchange the version step patches only the postings of
   attributes actually touched by Δ.

   A posting set has three representations.  [Building] — a count plus
   a newest-first cons list — exists only inside a bulk build ({!create}
   freezes every key before publishing).  [Frozen] — one sorted id
   array, compact and cache-friendly to sweep — is what the planner's
   hot path (bitset fills, cardinalities) runs on.  [Patched] — a frozen
   base plus a bounded overlay of pending adds and deletes — is what a
   {e dense} posting becomes under incremental maintenance: the
   [present] rows of universal attributes hold |D| ids, and re-copying
   such an array on every transaction is an O(|D|) write wall.  The
   overlay keeps the version step at O(log |D|) per touched key and is
   folded back into a fresh [Frozen] array only once [patch_cap] edits
   accumulate, so reads stay within a constant factor of array speed
   and the rebuild cost is amortized over [patch_cap] transactions. *)
type postings =
  | Frozen of Entry.id array (* sorted; duplicates kept (multi-valued) *)
  | Building of int * Entry.id list (* count, ids newest-first *)
  | Patched of patched

and patched = {
  p_base : Entry.id array; (* sorted; occurrences of [p_dels] ids are dead *)
  p_dels : unit Pmap.t; (* ids whose base occurrences are all dead *)
  p_adds : Entry.id list; (* pushed since the base was built; newest-first *)
  p_edits : int; (* |p_adds| + cardinal p_dels: rebuild trigger *)
  p_live : int; (* live postings across base and overlay *)
}

type t = {
  ix : Index.t;
  eq : postings Pmap.t;
  present : postings Pmap.t;
  (* Range and trigram structures are built lazily per attribute — the
     legality hot path (Eq/Present only) never pays for them.  The lock
     makes on-demand construction safe when a pool evaluates several
     queries over one shared snapshot concurrently; the maps being
     persistent, a version step just drops the touched attributes from
     its copy of the spine and shares the rest. *)
  lock : Mutex.t;
  mutable ranges : range_idx Pmap.t;
  mutable trigrams : (string, Entry.id array) Hashtbl.t Pmap.t;
}

let p_count = function
  | Frozen a -> Array.length a
  | Building (c, _) -> c
  | Patched p -> p.p_live

let p_iter f = function
  | Frozen a -> Array.iter f a
  | Building (_, l) -> List.iter f l
  | Patched { p_base; p_dels; p_adds; _ } ->
      if Pmap.is_empty p_dels then Array.iter f p_base
      else Array.iter (fun id -> if not (Pmap.mem id p_dels) then f id) p_base;
      List.iter f p_adds

let thaw p =
  match p with
  | Frozen a -> (Array.length a, Array.to_list a)
  | Building (c, l) -> (c, l)
  | Patched { p_live; _ } ->
      let l = ref [] in
      p_iter (fun id -> l := id :: !l) p;
      (p_live, !l)

let freeze = function
  | (Frozen _ | Patched _) as p -> p
  | Building (_, l) ->
      let a = Array.of_list l in
      Array.sort Int.compare a;
      Frozen a

let push_tbl tbl k id =
  match Hashtbl.find_opt tbl k with
  | Some p ->
      let c, l = thaw p in
      Hashtbl.replace tbl k (Building (c + 1, id :: l))
  | None -> Hashtbl.replace tbl k (Building (1, [ id ]))

(* Prepend a later chunk's per-key list onto the accumulated one: chunks
   are merged in increasing rank order and each per-chunk list is built
   newest-first, so [l @ prev] reproduces exactly the lists of the
   sequential build (the final freeze then sorts both the same way). *)
let merge_into tbl k p =
  match Hashtbl.find_opt tbl k with
  | None -> Hashtbl.replace tbl k p
  | Some p0 ->
      let c, l = thaw p and c0, prev = thaw p0 in
      Hashtbl.replace tbl k (Building (c + c0, l @ prev))

let create ?pool ix =
  let n = Index.n ix in
  Index.materialize ix;
  let build ~lo ~hi =
    (* Pre-sized: one eq bucket per entry-value pair is the common case
       (duplicate pairs only shrink it), so seed with the chunk width
       instead of growing through doublings from a constant. *)
    let eq = Hashtbl.create (max 64 (2 * (hi - lo)))
    and present = Hashtbl.create (max 16 (hi - lo)) in
    for r = lo to hi - 1 do
      let e = Index.entry_of_rank ix r in
      let id = Entry.id e in
      List.iter
        (fun (a, v) ->
          push_tbl eq (eq_key (Attr.to_string a) (norm (Value.to_string v))) id)
        (Entry.pairs e);
      Attr.Set.iter
        (fun a -> push_tbl present (attr_key (Attr.to_string a)) id)
        (Entry.attributes e)
    done;
    (eq, present)
  in
  let eq, present =
    match Bounds_par.Pool.map_chunks ?pool n build with
    | [] -> (Hashtbl.create 16, Hashtbl.create 16)
    | (eq, present) :: rest ->
        List.iter
          (fun (eq', present') ->
            Hashtbl.iter (merge_into eq) eq';
            Hashtbl.iter (merge_into present) present')
          rest;
        (eq, present)
  in
  (* snapshot-build time is freeze time: every posting list becomes one
     sorted id array before the first lookup runs *)
  let to_pmap tbl = Hashtbl.fold (fun k p m -> Pmap.add k (freeze p) m) tbl Pmap.empty in
  {
    ix;
    eq = to_pmap eq;
    present = to_pmap present;
    lock = Mutex.create ();
    ranges = Pmap.empty;
    trigrams = Pmap.empty;
  }

let index t = t.ix

let of_postings t p =
  (* query path: force array-speed rank lookups before the member walk *)
  Index.materialize t.ix;
  let bs = Bitset.create (Index.n t.ix) in
  p_iter (fun id -> Bitset.set bs (Index.rank t.ix id)) p;
  bs

let find_eq t a v =
  match eq_key_opt (Attr.to_string a) (norm v) with
  | None -> None
  | Some k -> Pmap.find_opt k t.eq

let find_present t a =
  match attr_key_opt (Attr.to_string a) with
  | None -> None
  | Some k -> Pmap.find_opt k t.present

let lookup_eq t a v =
  match find_eq t a v with
  | Some p -> of_postings t p
  | None -> Bitset.create (Index.n t.ix)

let lookup_present t a =
  match find_present t a with
  | Some p -> of_postings t p
  | None -> Bitset.create (Index.n t.ix)

let card_eq t a v = match find_eq t a v with Some p -> p_count p | None -> 0

let card_present t a =
  match find_present t a with Some p -> p_count p | None -> 0

(* {2 Lazy per-attribute structures} *)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let iter_present_ids t a f =
  match find_present t a with Some p -> p_iter f p | None -> ()

let entry_of_id t id = Index.entry_of_rank t.ix (Index.rank t.ix id)

let build_range t a =
  let num = ref [] and nonnum = ref [] and all = ref [] in
  iter_present_ids t a (fun id ->
      let e = entry_of_id t id in
      List.iter
        (fun v ->
          let s = Value.to_string v in
          let ns = norm s in
          (match int_of_string_opt (String.trim s) with
          | Some k -> num := (k, id) :: !num
          | None -> nonnum := (ns, id) :: !nonnum);
          all := (ns, id) :: !all)
        (Entry.values e a));
  let by_int (k1, i1) (k2, i2) =
    match Int.compare k1 k2 with 0 -> Int.compare i1 i2 | c -> c
  in
  let by_str (s1, i1) (s2, i2) =
    match String.compare s1 s2 with 0 -> Int.compare i1 i2 | c -> c
  in
  let sorted cmp l =
    let arr = Array.of_list l in
    Array.sort cmp arr;
    (Array.map fst arr, Array.map snd arr)
  in
  let num_keys, num_ids = sorted by_int !num in
  let nonnum_keys, nonnum_ids = sorted by_str !nonnum in
  let all_keys, all_ids = sorted by_str !all in
  { num_keys; num_ids; nonnum_keys; nonnum_ids; all_keys; all_ids }

let range_of t a =
  let key = attr_key (Attr.to_string a) in
  locked t (fun () ->
      match Pmap.find_opt key t.ranges with
      | Some ri -> ri
      | None ->
          let ri = build_range t a in
          t.ranges <- Pmap.add key ri t.ranges;
          ri)

(* First index at which [pred] holds; [pred] must be monotone
   (false on a prefix, true on the suffix — guaranteed by sortedness). *)
let lower_bound arr pred =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if pred arr.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

(* The [lo, hi) slices of the sorted arrays matching [Ge]/[Le] against
   assertion value [v] — shared by the bitset fill and the cardinality
   estimate so the two can never disagree. *)
let range_slices ri ~ge v =
  let nv = norm v in
  let str_pred s = if ge then String.compare s nv >= 0 else String.compare s nv > 0 in
  match int_of_string_opt (String.trim v) with
  | Some b ->
      let num_cut = lower_bound ri.num_keys (fun k -> if ge then k >= b else k > b) in
      let str_cut = lower_bound ri.nonnum_keys str_pred in
      if ge then
        [
          (ri.num_ids, num_cut, Array.length ri.num_ids);
          (ri.nonnum_ids, str_cut, Array.length ri.nonnum_ids);
        ]
      else [ (ri.num_ids, 0, num_cut); (ri.nonnum_ids, 0, str_cut) ]
  | None ->
      let cut = lower_bound ri.all_keys str_pred in
      if ge then [ (ri.all_ids, cut, Array.length ri.all_ids) ]
      else [ (ri.all_ids, 0, cut) ]

let lookup_range t ~ge a v =
  let ri = range_of t a in
  Index.materialize t.ix;
  let bs = Bitset.create (Index.n t.ix) in
  List.iter
    (fun (ids, lo, hi) ->
      for i = lo to hi - 1 do
        Bitset.set bs (Index.rank t.ix ids.(i))
      done)
    (range_slices ri ~ge v);
  bs

let card_range t ~ge a v =
  let ri = range_of t a in
  List.fold_left (fun acc (_, lo, hi) -> acc + (hi - lo)) 0 (range_slices ri ~ge v)

let grams s =
  let n = String.length s in
  if n < 3 then [] else List.init (n - 2) (fun i -> String.sub s i 3)

let build_trigrams t a =
  let tbl = Hashtbl.create 256 in
  iter_present_ids t a (fun id ->
      let e = entry_of_id t id in
      List.iter
        (fun v ->
          List.iter
            (fun g ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt tbl g) in
              Hashtbl.replace tbl g (id :: prev))
            (grams (norm (Value.to_string v))))
        (Entry.values e a));
  let out = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
  Hashtbl.iter
    (fun g l -> Hashtbl.replace out g (Array.of_list (List.sort_uniq Int.compare l)))
    tbl;
  out

let trigrams_of t a =
  let key = attr_key (Attr.to_string a) in
  locked t (fun () ->
      match Pmap.find_opt key t.trigrams with
      | Some tbl -> tbl
      | None ->
          let tbl = build_trigrams t a in
          t.trigrams <- Pmap.add key tbl t.trigrams;
          tbl)

let substr_grams (sub : Filter.substring) =
  let frags =
    Option.to_list sub.initial @ sub.any @ Option.to_list sub.final
  in
  List.sort_uniq String.compare (List.concat_map (fun f -> grams (norm f)) frags)

(* If fragment [f] occurs in a value then every 3-gram of [f] occurs in
   it too, so intersecting gram postings yields a superset of the true
   matches — callers re-verify candidates with [Filter.matches].  Using
   only the scarcest grams keeps the intersection cheap and is still a
   superset. *)
let max_grams_used = 4

let substr_postings t a sub =
  match substr_grams sub with
  | [] -> None (* no fragment long enough to prefilter *)
  | gs ->
      let tbl = trigrams_of t a in
      let postings =
        List.map
          (fun g -> Option.value ~default:[||] (Hashtbl.find_opt tbl g))
          gs
      in
      let by_scarcity = List.stable_sort (fun x y -> Int.compare (Array.length x) (Array.length y)) postings in
      Some (List.filteri (fun i _ -> i < max_grams_used) by_scarcity)

let substr_candidates t a sub =
  match substr_postings t a sub with
  | None -> lookup_present t a
  | Some [] -> Bitset.create (Index.n t.ix)
  | Some (first :: rest) ->
      Index.materialize t.ix;
      let bs = Bitset.create (Index.n t.ix) in
      Array.iter (fun id -> Bitset.set bs (Index.rank t.ix id)) first;
      List.iter
        (fun arr ->
          let other = Bitset.create (Index.n t.ix) in
          Array.iter (fun id -> Bitset.set other (Index.rank t.ix id)) arr;
          Bitset.inter_into ~into:bs other)
        rest;
      bs

let card_substr t a sub =
  match substr_postings t a sub with
  | None -> card_present t a
  | Some [] -> 0
  | Some (first :: _) -> Array.length first

(* {2 Incremental maintenance} *)

(* Counts equal posting multiplicities by construction (one cons per
   push, one array slot per frozen posting), so a multi-valued entry
   contributing several postings to one key is fully unindexed here.

   A [Frozen] posting never thaws to a list: below [patch_min] it is
   re-spliced in place (binary search plus one blit), above it the edit
   goes into a [Patched] overlay.  Either way a dense posting (every
   person carries [uid] and [name], so the [present] rows hold |D| ids)
   costs O(log |D|) per transaction instead of the O(|D|) copy or the
   O(|D| log |D|) thaw-and-resort that made writes scale with directory
   size.  Only [Building] postings (bulk-build residue) still need
   {!Builder.seal}'s re-freeze. *)

(* Splice threshold: smaller arrays are cheaper to copy than to wrap in
   an overlay, and staying [Frozen] keeps their reads branch-free. *)
let patch_min = 1024

(* Overlay size at which a [Patched] posting folds back into one sorted
   array.  Rebuild is O(|base|), so the amortized per-edit cost is
   |base| / patch_cap ≈ a few thousand words at |D| = 10^6. *)
let patch_cap = 256

(* Rightmost insertion point keeping [a] sorted. *)
let sorted_insert a id =
  let n = Array.length a in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) <= id then lo := mid + 1 else hi := mid
  done;
  let at = !lo in
  let out = Array.make (n + 1) id in
  Array.blit a 0 out 0 at;
  Array.blit a at out (at + 1) (n - at);
  out

(* Occurrences of [id] in sorted [a] (multi-valued entries post one
   slot per value): [first] is the leftmost candidate position. *)
let occ_range a id =
  let n = Array.length a in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < id then lo := mid + 1 else hi := mid
  done;
  let first = !lo in
  let last = ref first in
  while !last < n && a.(!last) = id do incr last done;
  (first, !last)

(* Fold the overlay back into one sorted array: sweep the base skipping
   dead ids while merging in the (sorted) adds. *)
let rebuild { p_base; p_dels; p_adds; p_live; _ } =
  let add = Array.of_list p_adds in
  Array.sort Int.compare add;
  let na = Array.length add and nb = Array.length p_base in
  let out = Array.make p_live 0 in
  let j = ref 0 and k = ref 0 in
  for i = 0 to nb - 1 do
    let v = p_base.(i) in
    if not (Pmap.mem v p_dels) then begin
      while !k < na && add.(!k) < v do
        out.(!j) <- add.(!k);
        incr j;
        incr k
      done;
      out.(!j) <- v;
      incr j
    end
  done;
  while !k < na do
    out.(!j) <- add.(!k);
    incr j;
    incr k
  done;
  Frozen out

let patched p = if p.p_edits > patch_cap then rebuild p else Patched p

let push m k id =
  Pmap.update k
    (function
      | Some (Frozen a) when Array.length a < patch_min ->
          Some (Frozen (sorted_insert a id))
      | Some (Frozen a) ->
          Some
            (Patched
               {
                 p_base = a;
                 p_dels = Pmap.empty;
                 p_adds = [ id ];
                 p_edits = 1;
                 p_live = Array.length a + 1;
               })
      | Some (Patched p) ->
          Some
            (patched
               {
                 p with
                 p_adds = id :: p.p_adds;
                 p_edits = p.p_edits + 1;
                 p_live = p.p_live + 1;
               })
      | Some (Building (c, l)) -> Some (Building (c + 1, id :: l))
      | None -> Some (Building (1, [ id ])))
    m

let remove_from m k id =
  Pmap.update k
    (function
      | None -> None
      | Some (Frozen a) when Array.length a < patch_min -> (
          match occ_range a id with
          | first, last when last = first -> Some (Frozen a)
          | first, last when last - first = Array.length a -> None
          | first, last ->
              let n = Array.length a in
              let out = Array.make (n - (last - first)) 0 in
              Array.blit a 0 out 0 first;
              Array.blit a last out first (n - last);
              Some (Frozen out))
      | Some (Frozen a) -> (
          match occ_range a id with
          | first, last when last = first -> Some (Frozen a)
          | first, last ->
              Some
                (Patched
                   {
                     p_base = a;
                     p_dels = Pmap.add id () Pmap.empty;
                     p_adds = [];
                     p_edits = 1;
                     p_live = Array.length a - (last - first);
                   }))
      | Some (Patched p) ->
          (* remove every occurrence: filter the overlay adds, and mark
             the id dead in the base unless it already is *)
          let ra = ref 0 in
          let adds =
            List.filter
              (fun i ->
                if i = id then (
                  incr ra;
                  false)
                else true)
              p.p_adds
          in
          let rb =
            if Pmap.mem id p.p_dels then 0
            else
              let first, last = occ_range p.p_base id in
              last - first
          in
          if !ra = 0 && rb = 0 then Some (Patched p)
          else
            let live = p.p_live - !ra - rb in
            if live = 0 then None
            else
              let dels, de =
                if rb > 0 then (Pmap.add id () p.p_dels, 1)
                else (p.p_dels, 0)
              in
              Some
                (patched
                   {
                     p_base = p.p_base;
                     p_dels = dels;
                     p_adds = adds;
                     p_edits = p.p_edits - !ra + de;
                     p_live = live;
                   })
      | Some (Building (_, l)) -> (
          match List.filter (fun i -> i <> id) l with
          | [] -> None
          | keep -> Some (Building (List.length keep, keep))))
    m

module Builder = struct
  type vindex = t

  type t = {
    base : vindex;
    mutable b_eq : postings Pmap.t;
    mutable b_present : postings Pmap.t;
    mutable b_ranges : range_idx Pmap.t;
    mutable b_trigrams : (string, Entry.id array) Hashtbl.t Pmap.t;
    (* Keys edited this transaction, re-frozen at seal (a no-op for
       the Frozen/Patched splices; it catches keys first created here,
       which are Building lists). *)
    touched_eq : (int, unit) Hashtbl.t;
    touched_present : (int, unit) Hashtbl.t;
    (* Entries inserted earlier in this same transaction are not in the
       base index; keep them at hand so a later delete can unindex
       them. *)
    added : (Entry.id, Entry.t) Hashtbl.t;
  }

  let of_version base =
    (* The lazy structures carry over wholesale; only the attributes Δ
       touches are evicted (the per-attribute dirty mark), to be rebuilt
       on their next use.  Untouched attributes keep their sorted arrays
       and gram postings — valid because postings are ids. *)
    let ranges, trigrams =
      locked base (fun () -> (base.ranges, base.trigrams))
    in
    {
      base;
      b_eq = base.eq;
      b_present = base.present;
      b_ranges = ranges;
      b_trigrams = trigrams;
      touched_eq = Hashtbl.create 16;
      touched_present = Hashtbl.create 16;
      added = Hashtbl.create 16;
    }

  let dirty b ak =
    b.b_ranges <- Pmap.remove ak b.b_ranges;
    b.b_trigrams <- Pmap.remove ak b.b_trigrams

  let insert b entry =
    let id = Entry.id entry in
    Hashtbl.replace b.added id entry;
    List.iter
      (fun (a, v) ->
        let k = eq_key (Attr.to_string a) (norm (Value.to_string v)) in
        Hashtbl.replace b.touched_eq k ();
        b.b_eq <- push b.b_eq k id)
      (Entry.pairs entry);
    Attr.Set.iter
      (fun a ->
        let ak = attr_key (Attr.to_string a) in
        dirty b ak;
        Hashtbl.replace b.touched_present ak ();
        b.b_present <- push b.b_present ak id)
      (Entry.attributes entry)

  let delete b id =
    let e =
      match Hashtbl.find_opt b.added id with
      | Some e -> e
      | None -> entry_of_id b.base id
    in
    Hashtbl.remove b.added id;
    List.iter
      (fun (a, v) ->
        match eq_key_opt (Attr.to_string a) (norm (Value.to_string v)) with
        | None -> ()
        | Some k ->
            Hashtbl.replace b.touched_eq k ();
            b.b_eq <- remove_from b.b_eq k id)
      (Entry.pairs e);
    Attr.Set.iter
      (fun a ->
        match attr_key_opt (Attr.to_string a) with
        | None -> ()
        | Some ak ->
            dirty b ak;
            Hashtbl.replace b.touched_present ak ();
            b.b_present <- remove_from b.b_present ak id)
      (Entry.attributes e)

  let apply_op b = function
    | Update.Insert { entry; _ } -> insert b entry
    | Update.Delete id -> delete b id

  let seal ~index b =
    let refreeze touched m =
      Hashtbl.fold
        (fun k () m -> Pmap.update k (Option.map freeze) m)
        touched m
    in
    {
      ix = index;
      eq = refreeze b.touched_eq b.b_eq;
      present = refreeze b.touched_present b.b_present;
      lock = Mutex.create ();
      ranges = b.b_ranges;
      trigrams = b.b_trigrams;
    }
end

let apply ~index ops t =
  let b = Builder.of_version t in
  List.iter (Builder.apply_op b) ops;
  Builder.seal ~index b

let replace_entry ~index old_e new_e t =
  apply ~index
    [
      Update.Delete (Entry.id old_e);
      Update.Insert { parent = None; entry = new_e };
    ]
    t
