open Bounds_model

type key = string * string (* attribute name, normalized value rendering *)

(* Per-attribute sorted-value arrays for Ge/Le.  [Filter.order_cmp] is
   numeric iff BOTH sides parse as integers and falls back to a
   case-folded string compare otherwise, so the comparison relation is
   not a single total order over mixed values ("9" < "10" numerically,
   "10" < "2a" and "9" > "2a" as strings).  One sorted array cannot
   answer both regimes; three can:

   - [num]: values that parse as int, sorted numerically — matched
     against a numeric assertion value;
   - [nonnum]: the remaining values, sorted as normalized strings — a
     numeric assertion value compares with these as a string;
   - [all]: every value as a normalized string — a non-numeric assertion
     value compares with {e all} stored values as strings.

   Each element is a (value, id) pair; a multi-valued entry appears
   once per value, which is exactly [Filter.matches]'s exists-semantics
   once the ids land in a bitset. *)
type range_idx = {
  num_keys : int array; (* sorted; num_ids.(i) holds key num_keys.(i) *)
  num_ids : Entry.id array;
  nonnum_keys : string array;
  nonnum_ids : Entry.id array;
  all_keys : string array;
  all_ids : Entry.id array;
}

(* All postings are entry {e ids}, not ranks: an id survives any update
   that keeps the entry, whereas a single insertion shifts every rank
   behind it.  Lookups convert through the index's rank table on the way
   into a bitset — a constant-factor cost on the same O(result) walk —
   and in exchange {!apply} patches only the postings of attributes
   actually touched by Δ.

   A posting set has two representations: [Building] — a count plus a
   newest-first cons list, cheap to patch — and [Frozen] — one sorted id
   array, compact and cache-friendly to sweep.  {!create} freezes every
   key at snapshot-build time, so the planner's hot path (bitset fills,
   cardinalities) runs on arrays; {!apply} thaws exactly the keys Δ
   touches back to lists, the mutable build representation. *)
type postings =
  | Frozen of Entry.id array (* sorted; duplicates kept (multi-valued) *)
  | Building of int * Entry.id list (* count, ids newest-first *)

type t = {
  ix : Index.t;
  eq : (key, postings) Hashtbl.t;
  present : (string, postings) Hashtbl.t;
  (* Range and trigram structures are built lazily per attribute — the
     legality hot path (Eq/Present only) never pays for them.  The lock
     makes on-demand construction safe when a pool evaluates several
     queries over one shared snapshot concurrently. *)
  lock : Mutex.t;
  ranges : (string, range_idx) Hashtbl.t;
  trigrams : (string, (string, Entry.id array) Hashtbl.t) Hashtbl.t;
}

let norm = String.lowercase_ascii

(* Insertion-side key normalization hash-conses the lowercased rendering
   (the raw payload is already interned, but [norm] would otherwise
   allocate a fresh copy per occurrence).  Lookups keep plain [norm] so
   hostile query constants never grow the pool. *)
let norm_key s = Intern.share Intern.vkey (norm s)

let p_count = function Frozen a -> Array.length a | Building (c, _) -> c

let p_iter f = function
  | Frozen a -> Array.iter f a
  | Building (_, l) -> List.iter f l

let thaw = function
  | Frozen a -> (Array.length a, Array.to_list a)
  | Building (c, l) -> (c, l)

let freeze = function
  | Frozen _ as p -> p
  | Building (_, l) ->
      let a = Array.of_list l in
      Array.sort Int.compare a;
      Frozen a

let freeze_tbl tbl = Hashtbl.filter_map_inplace (fun _ p -> Some (freeze p)) tbl

let push tbl k id =
  match Hashtbl.find_opt tbl k with
  | Some p ->
      let c, l = thaw p in
      Hashtbl.replace tbl k (Building (c + 1, id :: l))
  | None -> Hashtbl.replace tbl k (Building (1, [ id ]))

(* Prepend a later chunk's per-key list onto the accumulated one: chunks
   are merged in increasing rank order and each per-chunk list is built
   newest-first, so [l @ prev] reproduces exactly the lists of the
   sequential build (the final freeze then sorts both the same way). *)
let merge_into tbl k p =
  match Hashtbl.find_opt tbl k with
  | None -> Hashtbl.replace tbl k p
  | Some p0 ->
      let c, l = thaw p and c0, prev = thaw p0 in
      Hashtbl.replace tbl k (Building (c + c0, l @ prev))

let create ?pool ix =
  let n = Index.n ix in
  let build ~lo ~hi =
    (* Pre-sized: one eq bucket per entry-value pair is the common case
       (duplicate pairs only shrink it), so seed with the chunk width
       instead of growing through doublings from a constant. *)
    let eq = Hashtbl.create (max 64 (2 * (hi - lo)))
    and present = Hashtbl.create (max 16 (hi - lo)) in
    for r = lo to hi - 1 do
      let e = Index.entry_of_rank ix r in
      let id = Entry.id e in
      List.iter
        (fun (a, v) -> push eq (Attr.to_string a, norm_key (Value.to_string v)) id)
        (Entry.pairs e);
      Attr.Set.iter (fun a -> push present (Attr.to_string a) id) (Entry.attributes e)
    done;
    (eq, present)
  in
  let eq, present =
    match Bounds_par.Pool.map_chunks ?pool n build with
    | [] -> (Hashtbl.create 16, Hashtbl.create 16)
    | (eq, present) :: rest ->
        List.iter
          (fun (eq', present') ->
            Hashtbl.iter (merge_into eq) eq';
            Hashtbl.iter (merge_into present) present')
          rest;
        (eq, present)
  in
  (* snapshot-build time is freeze time: every posting list becomes one
     sorted id array before the first lookup runs *)
  freeze_tbl eq;
  freeze_tbl present;
  {
    ix;
    eq;
    present;
    lock = Mutex.create ();
    ranges = Hashtbl.create 16;
    trigrams = Hashtbl.create 16;
  }

let index t = t.ix

let of_postings t p =
  let bs = Bitset.create (Index.n t.ix) in
  p_iter (fun id -> Bitset.set bs (Index.rank t.ix id)) p;
  bs

let lookup_eq t a v =
  match Hashtbl.find_opt t.eq (Attr.to_string a, norm v) with
  | Some p -> of_postings t p
  | None -> Bitset.create (Index.n t.ix)

let lookup_present t a =
  match Hashtbl.find_opt t.present (Attr.to_string a) with
  | Some p -> of_postings t p
  | None -> Bitset.create (Index.n t.ix)

let card_eq t a v =
  match Hashtbl.find_opt t.eq (Attr.to_string a, norm v) with
  | Some p -> p_count p
  | None -> 0

let card_present t a =
  match Hashtbl.find_opt t.present (Attr.to_string a) with
  | Some p -> p_count p
  | None -> 0

(* {2 Lazy per-attribute structures} *)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let iter_present_ids t key f =
  match Hashtbl.find_opt t.present key with
  | Some p -> p_iter f p
  | None -> ()

let entry_of_id t id = Index.entry_of_rank t.ix (Index.rank t.ix id)

let build_range t a key =
  let num = ref [] and nonnum = ref [] and all = ref [] in
  iter_present_ids t key (fun id ->
      let e = entry_of_id t id in
      List.iter
        (fun v ->
          let s = Value.to_string v in
          let ns = norm s in
          (match int_of_string_opt (String.trim s) with
          | Some k -> num := (k, id) :: !num
          | None -> nonnum := (ns, id) :: !nonnum);
          all := (ns, id) :: !all)
        (Entry.values e a));
  let by_int (k1, i1) (k2, i2) =
    match Int.compare k1 k2 with 0 -> Int.compare i1 i2 | c -> c
  in
  let by_str (s1, i1) (s2, i2) =
    match String.compare s1 s2 with 0 -> Int.compare i1 i2 | c -> c
  in
  let sorted cmp l =
    let arr = Array.of_list l in
    Array.sort cmp arr;
    (Array.map fst arr, Array.map snd arr)
  in
  let num_keys, num_ids = sorted by_int !num in
  let nonnum_keys, nonnum_ids = sorted by_str !nonnum in
  let all_keys, all_ids = sorted by_str !all in
  { num_keys; num_ids; nonnum_keys; nonnum_ids; all_keys; all_ids }

let range_of t a =
  let key = Attr.to_string a in
  locked t (fun () ->
      match Hashtbl.find_opt t.ranges key with
      | Some ri -> ri
      | None ->
          let ri = build_range t a key in
          Hashtbl.add t.ranges key ri;
          ri)

(* First index at which [pred] holds; [pred] must be monotone
   (false on a prefix, true on the suffix — guaranteed by sortedness). *)
let lower_bound arr pred =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if pred arr.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

(* The [lo, hi) slices of the sorted arrays matching [Ge]/[Le] against
   assertion value [v] — shared by the bitset fill and the cardinality
   estimate so the two can never disagree. *)
let range_slices ri ~ge v =
  let nv = norm v in
  let str_pred s = if ge then String.compare s nv >= 0 else String.compare s nv > 0 in
  match int_of_string_opt (String.trim v) with
  | Some b ->
      let num_cut = lower_bound ri.num_keys (fun k -> if ge then k >= b else k > b) in
      let str_cut = lower_bound ri.nonnum_keys str_pred in
      if ge then
        [
          (ri.num_ids, num_cut, Array.length ri.num_ids);
          (ri.nonnum_ids, str_cut, Array.length ri.nonnum_ids);
        ]
      else [ (ri.num_ids, 0, num_cut); (ri.nonnum_ids, 0, str_cut) ]
  | None ->
      let cut = lower_bound ri.all_keys str_pred in
      if ge then [ (ri.all_ids, cut, Array.length ri.all_ids) ]
      else [ (ri.all_ids, 0, cut) ]

let lookup_range t ~ge a v =
  let ri = range_of t a in
  let bs = Bitset.create (Index.n t.ix) in
  List.iter
    (fun (ids, lo, hi) ->
      for i = lo to hi - 1 do
        Bitset.set bs (Index.rank t.ix ids.(i))
      done)
    (range_slices ri ~ge v);
  bs

let card_range t ~ge a v =
  let ri = range_of t a in
  List.fold_left (fun acc (_, lo, hi) -> acc + (hi - lo)) 0 (range_slices ri ~ge v)

let grams s =
  let n = String.length s in
  if n < 3 then [] else List.init (n - 2) (fun i -> String.sub s i 3)

let build_trigrams t a key =
  let tbl = Hashtbl.create 256 in
  iter_present_ids t key (fun id ->
      let e = entry_of_id t id in
      List.iter
        (fun v ->
          List.iter
            (fun g ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt tbl g) in
              Hashtbl.replace tbl g (id :: prev))
            (grams (norm (Value.to_string v))))
        (Entry.values e a));
  let out = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
  Hashtbl.iter
    (fun g l -> Hashtbl.replace out g (Array.of_list (List.sort_uniq Int.compare l)))
    tbl;
  out

let trigrams_of t a =
  let key = Attr.to_string a in
  locked t (fun () ->
      match Hashtbl.find_opt t.trigrams key with
      | Some tbl -> tbl
      | None ->
          let tbl = build_trigrams t a key in
          Hashtbl.add t.trigrams key tbl;
          tbl)

let substr_grams (sub : Filter.substring) =
  let frags =
    Option.to_list sub.initial @ sub.any @ Option.to_list sub.final
  in
  List.sort_uniq String.compare (List.concat_map (fun f -> grams (norm f)) frags)

(* If fragment [f] occurs in a value then every 3-gram of [f] occurs in
   it too, so intersecting gram postings yields a superset of the true
   matches — callers re-verify candidates with [Filter.matches].  Using
   only the scarcest grams keeps the intersection cheap and is still a
   superset. *)
let max_grams_used = 4

let substr_postings t a sub =
  match substr_grams sub with
  | [] -> None (* no fragment long enough to prefilter *)
  | gs ->
      let tbl = trigrams_of t a in
      let postings =
        List.map
          (fun g -> Option.value ~default:[||] (Hashtbl.find_opt tbl g))
          gs
      in
      let by_scarcity = List.stable_sort (fun x y -> Int.compare (Array.length x) (Array.length y)) postings in
      Some (List.filteri (fun i _ -> i < max_grams_used) by_scarcity)

let substr_candidates t a sub =
  match substr_postings t a sub with
  | None -> lookup_present t a
  | Some [] -> Bitset.create (Index.n t.ix)
  | Some (first :: rest) ->
      let bs = Bitset.create (Index.n t.ix) in
      Array.iter (fun id -> Bitset.set bs (Index.rank t.ix id)) first;
      List.iter
        (fun arr ->
          let other = Bitset.create (Index.n t.ix) in
          Array.iter (fun id -> Bitset.set other (Index.rank t.ix id)) arr;
          Bitset.inter_into ~into:bs other)
        rest;
      bs

let card_substr t a sub =
  match substr_postings t a sub with
  | None -> card_present t a
  | Some [] -> 0
  | Some (first :: _) -> Array.length first

(* {2 Incremental maintenance} *)

(* Counts equal posting multiplicities by construction (one cons per
   push, one array slot per frozen posting), so a multi-valued entry
   contributing several postings to one key is fully unindexed here.
   Thawed keys stay in the list representation — they are the ones under
   mutation. *)
let remove_from tbl k id =
  match Hashtbl.find_opt tbl k with
  | None -> ()
  | Some p -> (
      let _, l = thaw p in
      match List.filter (fun i -> i <> id) l with
      | [] -> Hashtbl.remove tbl k
      | keep -> Hashtbl.replace tbl k (Building (List.length keep, keep)))

let apply ~index ops t =
  let eq = Hashtbl.copy t.eq and present = Hashtbl.copy t.present in
  (* The lazy structures carry over wholesale; only the attributes Δ
     touches are evicted (the per-attribute dirty mark), to be rebuilt
     on their next use.  Untouched attributes keep their sorted arrays
     and gram postings — valid because postings are ids. *)
  let ranges = Hashtbl.copy t.ranges and trigrams = Hashtbl.copy t.trigrams in
  let dirty key =
    Hashtbl.remove ranges key;
    Hashtbl.remove trigrams key
  in
  (* Entries inserted earlier in this same transaction are not in the old
     index; keep them at hand so a later delete can unindex them. *)
  let added : (Entry.id, Entry.t) Hashtbl.t = Hashtbl.create 16 in
  let entry_of id =
    match Hashtbl.find_opt added id with
    | Some e -> e
    | None -> entry_of_id t id
  in
  List.iter
    (function
      | Update.Insert { entry; _ } ->
          let id = Entry.id entry in
          Hashtbl.replace added id entry;
          List.iter
            (fun (a, v) ->
              let key = Attr.to_string a in
              dirty key;
              push eq (key, norm_key (Value.to_string v)) id)
            (Entry.pairs entry);
          Attr.Set.iter
            (fun a ->
              let key = Attr.to_string a in
              dirty key;
              push present key id)
            (Entry.attributes entry)
      | Update.Delete id ->
          let e = entry_of id in
          Hashtbl.remove added id;
          List.iter
            (fun (a, v) ->
              let key = Attr.to_string a in
              dirty key;
              remove_from eq (key, norm (Value.to_string v)) id)
            (Entry.pairs e);
          Attr.Set.iter
            (fun a ->
              let key = Attr.to_string a in
              dirty key;
              remove_from present key id)
            (Entry.attributes e))
    ops;
  { ix = index; eq; present; lock = Mutex.create (); ranges; trigrams }

let replace_entry ~index old_e new_e t =
  apply ~index
    [
      Update.Delete (Entry.id old_e);
      Update.Insert { parent = None; entry = new_e };
    ]
    t
