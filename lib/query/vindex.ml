open Bounds_model

type key = string * string (* attribute name, normalized value rendering *)

type t = {
  ix : Index.t;
  eq : (key, int list) Hashtbl.t; (* ranks holding that pair *)
  present : (string, int list) Hashtbl.t;
}

let norm = String.lowercase_ascii

let push tbl k r =
  let prev = match Hashtbl.find_opt tbl k with Some l -> l | None -> [] in
  Hashtbl.replace tbl k (r :: prev)

(* Prepend a later chunk's per-key list onto the accumulated one: chunks
   are merged in increasing rank order and each per-chunk list is built
   newest-rank-first, so [l @ prev] reproduces exactly the
   descending-rank lists of the sequential build. *)
let merge_into tbl k l =
  match Hashtbl.find_opt tbl k with
  | None -> Hashtbl.replace tbl k l
  | Some prev -> Hashtbl.replace tbl k (l @ prev)

let create ?pool ix =
  let n = Index.n ix in
  let build ~lo ~hi =
    let eq = Hashtbl.create 1024 and present = Hashtbl.create 256 in
    for r = lo to hi - 1 do
      let e = Index.entry_of_rank ix r in
      List.iter
        (fun (a, v) -> push eq (Attr.to_string a, norm (Value.to_string v)) r)
        (Entry.pairs e);
      Attr.Set.iter (fun a -> push present (Attr.to_string a) r) (Entry.attributes e)
    done;
    (eq, present)
  in
  match Bounds_par.Pool.map_chunks ?pool n build with
  | [] -> { ix; eq = Hashtbl.create 16; present = Hashtbl.create 16 }
  | (eq, present) :: rest ->
      List.iter
        (fun (eq', present') ->
          Hashtbl.iter (merge_into eq) eq';
          Hashtbl.iter (merge_into present) present')
        rest;
      { ix; eq; present }

let index t = t.ix

let of_ranks t ranks =
  let bs = Bitset.create (Index.n t.ix) in
  List.iter (Bitset.set bs) ranks;
  bs

let lookup_eq t a v =
  of_ranks t
    (Option.value ~default:[] (Hashtbl.find_opt t.eq (Attr.to_string a, norm v)))

let lookup_present t a =
  of_ranks t
    (Option.value ~default:[] (Hashtbl.find_opt t.present (Attr.to_string a)))
