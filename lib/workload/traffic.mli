(** Mixed read/write traffic against a running directory server.

    [run] drives [clients] threads, each with its own connection and a
    deterministic request stream ([requests] per client): queries and
    scoped searches for reads, LDIF person-insertions for writes, in a
    [write_ratio] mix.  Insertion points are discovered from the server
    (one subtree search for orgUnits) before the clock starts, so the
    target store only needs to speak the white-pages schema.

    [tag] prefixes the generated key attribute ([uid]) values — reuse
    of a tag against a persistent store makes later writes key-reject. *)

type report = {
  clients : int;
  requests : int;  (** requests answered [Reply] *)
  reads : int;
  writes : int;
  failed : int;  (** transport errors + [Failed] replies (incl. rejects) *)
  elapsed : float;  (** wall seconds, connect to last reply *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
}

(** Successful requests per second. *)
val throughput : report -> float

val report_text : report -> string

val run :
  ?host:string ->
  port:int ->
  clients:int ->
  requests:int ->
  ?write_ratio:float ->
  ?seed:int ->
  ?tag:string ->
  unit ->
  (report, string) result
