open Bounds_model
open Bounds_core

let random_forest ~seed ~size ?(max_fanout = 8) ~mk_entry () =
  let rng = Random.State.make [| seed |] in
  let inst = ref Instance.empty in
  let eligible = ref [] in
  (* parents that can still accept children *)
  for id = 0 to size - 1 do
    let e = mk_entry rng id in
    let parent =
      if id = 0 || Random.State.int rng 8 = 0 || !eligible = [] then None
      else Some (List.nth !eligible (Random.State.int rng (List.length !eligible)))
    in
    (match Instance.add ~parent e !inst with
    | Ok i -> inst := i
    | Error err -> invalid_arg (Instance.error_to_string err));
    (match parent with
    | Some p when List.length (Instance.children !inst p) >= max_fanout ->
        eligible := List.filter (fun q -> q <> p) !eligible
    | _ -> ());
    eligible := id :: !eligible
  done;
  !inst

let pick rng = function
  | [] -> invalid_arg "pick: empty"
  | l -> List.nth l (Random.State.int rng (List.length l))

let key_counter = ref 0

let content_legal_entry ?(counter = key_counter) (schema : Schema.t) rng id =
  let cores = Oclass.Set.elements (Class_schema.core_classes schema.classes) in
  let core = pick rng cores in
  let closure = Class_schema.up_closure schema.classes core in
  let allowed_aux =
    Oclass.Set.fold
      (fun c acc -> Oclass.Set.union acc (Class_schema.aux_of schema.classes c))
      closure Oclass.Set.empty
  in
  let classes =
    if (not (Oclass.Set.is_empty allowed_aux)) && Random.State.bool rng then
      Oclass.Set.add (pick rng (Oclass.Set.elements allowed_aux)) closure
    else closure
  in
  let required =
    Oclass.Set.fold
      (fun c acc -> Attr.Set.union acc (Attribute_schema.required schema.attributes c))
      classes Attr.Set.empty
  in
  let value_for attr =
    incr counter;
    let unique = Attr.Set.mem attr schema.keys in
    match Typing.find schema.typing attr with
    | Atype.T_int -> Value.Int (if unique then !counter else Random.State.int rng 100)
    | Atype.T_bool -> Value.Bool (Random.State.bool rng)
    | Atype.T_dn -> Value.Dn (Printf.sprintf "id=%d" (Random.State.int rng 100))
    | Atype.T_telephone -> Value.String (string_of_int (10000 + !counter))
    | Atype.T_string ->
        Value.String
          (if unique then Printf.sprintf "k%d" !counter
           else Printf.sprintf "v%d" (Random.State.int rng 50))
  in
  let pairs =
    Attr.Set.fold
      (fun attr acc ->
        if Attr.equal attr Attr.object_class then acc
        else (attr, value_for attr) :: acc)
      required []
  in
  Entry.make ~id ~rdn:(Printf.sprintf "id=%d" id) ~classes pairs

let content_legal_forest ?counter ~seed ~size ?max_fanout schema =
  random_forest ~seed ~size ?max_fanout
    ~mk_entry:(fun rng id -> content_legal_entry ?counter schema rng id)
    ()

let random_class_tree ~seed ~n =
  let rng = Random.State.make [| seed |] in
  let rec go i acc names =
    if i >= n then acc
    else
      let name = Oclass.of_string (Printf.sprintf "c%d" i) in
      let parent = pick rng names in
      match Class_schema.add_core name ~parent acc with
      | Ok acc -> go (i + 1) acc (name :: names)
      | Error m -> invalid_arg m
  in
  go 0 Class_schema.empty [ Oclass.top ]

let random_schema ~seed ~n_classes ~n_req ~n_forb ~n_required_classes =
  let rng = Random.State.make [| seed; 17 |] in
  let classes = random_class_tree ~seed ~n:n_classes in
  let names = Oclass.Set.elements (Class_schema.core_classes classes) in
  let rels =
    [
      Structure_schema.Child;
      Structure_schema.Descendant;
      Structure_schema.Parent;
      Structure_schema.Ancestor;
    ]
  in
  let structure = ref Structure_schema.empty in
  for _ = 1 to n_req do
    structure :=
      Structure_schema.require (pick rng names) (pick rng rels) (pick rng names)
        !structure
  done;
  for _ = 1 to n_forb do
    let f =
      if Random.State.bool rng then Structure_schema.F_child
      else Structure_schema.F_descendant
    in
    structure := Structure_schema.forbid (pick rng names) f (pick rng names) !structure
  done;
  for _ = 1 to n_required_classes do
    structure := Structure_schema.require_class (pick rng names) !structure
  done;
  Schema.make_exn ~classes ~structure:!structure ()

let random_ops ?counter ~seed ~n (schema : Schema.t) inst =
  let rng = Random.State.make [| seed; 23 |] in
  let cur = ref inst in
  let next = ref (Instance.fresh_id inst) in
  let ops = ref [] in
  for _ = 1 to n do
    let ids = Instance.ids !cur in
    let leaves = List.filter (Instance.is_leaf !cur) ids in
    let do_insert = leaves = [] || Random.State.int rng 3 > 0 in
    if do_insert then begin
      let id = !next in
      incr next;
      let e = content_legal_entry ?counter schema rng id in
      let parent =
        if ids = [] || Random.State.int rng 8 = 0 then None
        else Some (pick rng ids)
      in
      ops := Update.Insert { parent; entry = e } :: !ops;
      cur :=
        (match Instance.add ~parent e !cur with
        | Ok i -> i
        | Error err -> invalid_arg (Instance.error_to_string err))
    end
    else begin
      let victim = pick rng leaves in
      ops := Update.Delete victim :: !ops;
      cur :=
        (match Instance.remove_leaf victim !cur with
        | Ok i -> i
        | Error err -> invalid_arg (Instance.error_to_string err))
    end
  done;
  List.rev !ops

(* --- adversarial values (codec/parser edge cases) --------------------- *)

(* Fragments chosen to stress the text formats: whitespace edges (LDIF
   trimming, separator spaces), CRLF, base64 alphabet and padding, filter
   metacharacters, high bytes and NUL. *)
let adversarial_fragments =
  [|
    ""; " "; "  "; "\t"; "\r"; "\n"; "\r\n"; ":"; "::"; "<"; "#"; ","; ";";
    "="; "=="; "+"; "("; ")"; "*"; "**"; "\\"; "\\2a"; "\\28"; "a"; "B"; "0";
    "Zm9v"; "QQ=="; "dn"; "objectClass"; "v"; "x y"; "\xc3\xa9"; "\xff";
    "\x00"; "end "; " begin"; "-";
  |]

let adversarial_string rng =
  let n = Random.State.int rng 4 in
  let buf = Buffer.create 16 in
  for _ = 0 to n do
    Buffer.add_string buf
      adversarial_fragments.(Random.State.int rng (Array.length adversarial_fragments))
  done;
  Buffer.contents buf

let adversarial_forest ~seed ~size () =
  let attrs = List.map Attr.of_string [ "a"; "b"; "desc"; "mail" ] in
  random_forest ~seed ~size ~mk_entry:(fun rng id ->
      let n = Random.State.int rng 4 in
      let pairs =
        List.init n (fun _ ->
            (pick rng attrs, Value.String (adversarial_string rng)))
      in
      Entry.make ~id
        ~rdn:(Printf.sprintf "id=%d" id)
        ~classes:(Oclass.Set.singleton Oclass.top)
        pairs)
    ()

(* --- random filters and queries --------------------------------------- *)

let filter_attrs = List.map Attr.of_string [ "a"; "b"; "cn"; "mail" ]

let filter_value rng =
  if Random.State.int rng 3 = 0 then adversarial_string rng
  else Printf.sprintf "v%d" (Random.State.int rng 20)

let filter_value_nonempty rng =
  match filter_value rng with "" -> "x" | s -> s

let rec random_filter ~depth rng =
  let open Bounds_query in
  if depth <= 0 || Random.State.int rng 3 = 0 then
    let a = pick rng filter_attrs in
    match Random.State.int rng 6 with
    | 0 -> Filter.Present a
    | 1 | 2 -> Filter.Eq (a, filter_value rng)
    | 3 -> Filter.Ge (a, filter_value rng)
    | 4 -> Filter.Le (a, filter_value rng)
    | _ ->
        let opt () =
          if Random.State.bool rng then Some (filter_value_nonempty rng) else None
        in
        let sub =
          {
            Filter.initial = opt ();
            any = List.init (Random.State.int rng 3) (fun _ -> filter_value_nonempty rng);
            final = opt ();
          }
        in
        (* [Substr {None; []; None}] is unprintable (it would render as the
           presence assertion); the parser never produces it either. *)
        if sub.Filter.initial = None && sub.Filter.any = [] && sub.Filter.final = None
        then Filter.Present a
        else Filter.Substr (a, sub)
  else
    match Random.State.int rng 3 with
    | 0 ->
        Filter.And
          (List.init (Random.State.int rng 3) (fun _ ->
               random_filter ~depth:(depth - 1) rng))
    | 1 ->
        Filter.Or
          (List.init (Random.State.int rng 3) (fun _ ->
               random_filter ~depth:(depth - 1) rng))
    | _ -> Filter.Not (random_filter ~depth:(depth - 1) rng)

let rec random_query ~depth rng =
  let open Bounds_query in
  if depth <= 0 || Random.State.int rng 3 = 0 then
    Query.Select (random_filter ~depth:2 rng)
  else
    let q () = random_query ~depth:(depth - 1) rng in
    match Random.State.int rng 4 with
    | 0 -> Query.Minus (q (), q ())
    | 1 -> Query.Union (q (), q ())
    | 2 -> Query.Inter (q (), q ())
    | _ ->
        let axis =
          pick rng [ Query.Child; Query.Parent; Query.Descendant; Query.Ancestor ]
        in
        Query.Chi (axis, q (), q ())

(* --- rich random schemas ---------------------------------------------- *)

(* A schema exercising every component: class tree + auxiliaries, per-class
   attribute declarations over a typed pool, structure elements, and the
   Section 6.1 extensions.  Always well-formed (Schema.make_exn succeeds);
   consistency is not guaranteed. *)
let random_schema_rich ~seed () =
  let rng = Random.State.make [| seed; 31 |] in
  let n_classes = 2 + Random.State.int rng 4 in
  let classes = random_class_tree ~seed ~n:n_classes in
  let n_aux = Random.State.int rng 3 in
  let auxes = List.init n_aux (fun i -> Oclass.of_string (Printf.sprintf "x%d" i)) in
  let classes =
    List.fold_left (fun cs x -> Class_schema.add_aux_exn x cs) classes auxes
  in
  let cores =
    Oclass.Set.elements (Class_schema.core_classes classes)
    |> List.filter (fun c -> not (Oclass.equal c Oclass.top))
  in
  let cores = if cores = [] then [ Oclass.top ] else cores in
  let classes =
    List.fold_left
      (fun cs x ->
        Class_schema.allow_aux_exn ~core:(pick rng cores) x cs)
      classes auxes
  in
  let attr_pool =
    List.map
      (fun (n, ty) -> (Attr.of_string n, ty))
      [
        ("a0", Atype.T_string); ("a1", Atype.T_string); ("a2", Atype.T_int);
        ("a3", Atype.T_bool); ("a4", Atype.T_telephone); ("a5", Atype.T_string);
      ]
  in
  let typing =
    List.fold_left
      (fun t (a, ty) -> Typing.declare_exn a ty t)
      Typing.default attr_pool
  in
  let subset rng l =
    List.filter (fun _ -> Random.State.int rng 3 = 0) l
  in
  let used = ref Attr.Set.empty in
  let attributes =
    List.fold_left
      (fun attrs c ->
        if Random.State.int rng 2 = 0 then attrs
        else begin
          let required = subset rng (List.map fst attr_pool) in
          let allowed = subset rng (List.map fst attr_pool) in
          List.iter (fun a -> used := Attr.Set.add a !used) (required @ allowed);
          Attribute_schema.add_class_exn c ~required ~allowed attrs
        end)
      Attribute_schema.empty
      (cores @ auxes)
  in
  let structure = ref Structure_schema.empty in
  let rels =
    [
      Structure_schema.Child; Structure_schema.Descendant;
      Structure_schema.Parent; Structure_schema.Ancestor;
    ]
  in
  for _ = 1 to Random.State.int rng 3 do
    structure :=
      Structure_schema.require (pick rng cores) (pick rng rels) (pick rng cores)
        !structure
  done;
  for _ = 1 to Random.State.int rng 2 do
    let f =
      if Random.State.bool rng then Structure_schema.F_child
      else Structure_schema.F_descendant
    in
    structure := Structure_schema.forbid (pick rng cores) f (pick rng cores) !structure
  done;
  if Random.State.int rng 3 = 0 then
    structure := Structure_schema.require_class (pick rng cores) !structure;
  let usable = Attr.Set.elements !used in
  let single_valued = subset rng usable in
  let keys = subset rng usable in
  Schema.make_exn ~typing ~attributes ~classes ~structure:!structure
    ~single_valued ~keys ()

(* --- not-necessarily-legal instances ----------------------------------- *)

(* Start from a content-legal forest and corrupt a third of the entries:
   extra classes, dropped or added pairs, duplicated values — feeding the
   legality differential oracles violations of every kind. *)
let mutated_forest ?counter ~seed ~size (schema : Schema.t) =
  let inst = content_legal_forest ?counter ~seed ~size schema in
  let rng = Random.State.make [| seed; 41 |] in
  let all_classes = Oclass.Set.elements (Schema.all_classes schema) in
  let attr_pool =
    List.map Attr.of_string [ "a0"; "a1"; "a5"; "rogue" ]
  in
  let mutate e =
    match Random.State.int rng 4 with
    | 0 when all_classes <> [] ->
        Entry.add_class (pick rng all_classes) e
    | 1 -> (
        match Entry.stored_pairs e with
        | [] -> e
        | pairs ->
            let a, v = pick rng pairs in
            Entry.remove_value a v e)
    | 2 ->
        Entry.add_value (pick rng attr_pool)
          (Value.String (Printf.sprintf "m%d" (Random.State.int rng 10)))
          e
    | _ -> (
        match Entry.stored_pairs e with
        | [] -> e
        | pairs ->
            let a, _ = pick rng pairs in
            Entry.add_value a (Value.String "dup") e)
  in
  List.fold_left
    (fun inst id ->
      if Random.State.int rng 3 = 0 then
        match Instance.update_entry id mutate inst with
        | Ok i -> i
        | Error _ -> inst
      else inst)
    inst (Instance.ids inst)
