(** Deterministic pseudo-random generators for instances, schemas and
    update operations — shared by the benchmark harness and the
    property-based tests. *)

open Bounds_model
open Bounds_core

(** [random_forest ~seed ~size ~max_fanout ~mk_entry ()] — a forest of
    [size] entries with ids [0..size-1]; each non-first entry attaches to
    a random earlier entry (or becomes a root with probability ~1/8).
    Fanout is capped at [max_fanout]. *)
val random_forest :
  seed:int ->
  size:int ->
  ?max_fanout:int ->
  mk_entry:(Random.State.t -> int -> Entry.t) ->
  unit ->
  Instance.t

(** An entry generator producing content-legal entries for a schema:
    a random core class's upward closure, a random allowed auxiliary
    class, and the required attributes of all of them (unique values for
    key attributes).  [counter] backs key uniqueness; it defaults to a
    process-wide counter — pass a local ref for runs that must be
    deterministic regardless of what generated before (fuzzing, parallel
    generation). *)
val content_legal_entry :
  ?counter:int ref -> Schema.t -> Random.State.t -> int -> Entry.t

(** A content-legal random forest for a schema (structure legality is
    {e not} guaranteed). *)
val content_legal_forest :
  ?counter:int ref -> seed:int -> size:int -> ?max_fanout:int -> Schema.t -> Instance.t

(** [random_class_tree ~seed ~n] — a core-class tree with [n] classes
    besides [top], named [c0..c(n-1)]. *)
val random_class_tree : seed:int -> n:int -> Class_schema.t

(** [random_schema ~seed ~n_classes ~n_req ~n_forb ~n_required_classes]
    — random class tree plus random structure elements over it.  Not
    necessarily consistent: that is the point (consistency tests and
    benches classify them). *)
val random_schema :
  seed:int ->
  n_classes:int ->
  n_req:int ->
  n_forb:int ->
  n_required_classes:int ->
  Schema.t

(** [random_ops ~seed ~n inst] — a valid operation sequence against
    [inst]: entry insertions under random existing entries (fresh ids)
    and deletions of current leaves, interleaved. *)
val random_ops :
  ?counter:int ref -> seed:int -> n:int -> Schema.t -> Instance.t -> Update.op list

(** {1 Adversarial generators (differential fuzzing)} *)

(** A string assembled from codec/parser edge-case fragments: leading and
    trailing whitespace, CRLF, base64 alphabet and padding, filter
    metacharacters ([()*\ ]), high bytes, NUL. *)
val adversarial_string : Random.State.t -> string

(** A forest of [top]-class entries whose string attribute values are
    adversarial — the LDIF round-trip oracle's input. *)
val adversarial_forest : seed:int -> size:int -> unit -> Instance.t

(** A random boolean/substring filter over a small attribute set, with
    adversarial values mixed in.  Never produces the unprintable
    [Substr {initial = None; any = []; final = None}]. *)
val random_filter : depth:int -> Random.State.t -> Bounds_query.Filter.t

(** A random hierarchical query whose atoms are {!random_filter}s. *)
val random_query : depth:int -> Random.State.t -> Bounds_query.Query.t

(** A random schema exercising every component: class tree with
    auxiliaries, per-class attribute declarations over a typed pool,
    structure elements, single-valued attributes and keys.  Well-formed by
    construction; not necessarily consistent. *)
val random_schema_rich : seed:int -> unit -> Schema.t

(** A content-legal forest with about a third of the entries corrupted
    (extra classes, dropped/added pairs, duplicated values) — input for
    the legality differential oracles. *)
val mutated_forest :
  ?counter:int ref -> seed:int -> size:int -> Schema.t -> Instance.t
