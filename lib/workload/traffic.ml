(* Mixed read/write traffic against a running directory server.

   N client threads each drive one connection with a deterministic
   request stream: reads are hierarchical queries and scoped searches
   drawn from a small template pool, writes are LDIF change records
   adding a fresh person under an orgUnit.  The generator learns the
   insertion points from the server itself — one subtree search for
   orgUnits before the clocks start — so it works against any store
   whose instance speaks the white-pages schema, regardless of how the
   unit tree was grown.

   Everything is deterministic in [seed] except the interleaving (and
   uid freshness across runs, which [tag] parameterizes: uid is a key
   attribute, so re-running against a persistent store needs a new
   tag). *)

type report = {
  clients : int;
  requests : int;  (** requests answered [Reply] *)
  reads : int;
  writes : int;
  failed : int;  (** transport errors + [Failed] replies (incl. rejects) *)
  elapsed : float;  (** wall seconds, connect to last reply *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
}

let throughput r = if r.elapsed > 0. then float_of_int r.requests /. r.elapsed else 0.

let report_text r =
  Printf.sprintf
    "clients %d  ok %d (%d reads, %d writes)  failed %d  %.2fs  %.0f req/s\n\
     latency ms: mean %.3f  p50 %.3f  p95 %.3f  max %.3f"
    r.clients r.requests r.reads r.writes r.failed r.elapsed (throughput r)
    r.mean_ms r.p50_ms r.p95_ms r.max_ms

(* --- request streams ----------------------------------------------------- *)

let read_templates units =
  [|
    Bounds_net.Proto.Query "(objectClass=person)";
    Bounds_net.Proto.Query
      "(minus (objectClass=orgGroup) (chi d (objectClass=orgGroup) \
       (objectClass=person)))";
    Bounds_net.Proto.Search
      { base = None; scope = "sub"; filter = "(objectClass=orgUnit)" };
    Bounds_net.Proto.Search
      {
        base = Some (List.nth units (List.length units / 2));
        scope = "one";
        filter = "(objectClass=person)";
      };
    Bounds_net.Proto.Query "(uid=*a*)";
  |]

let fresh_person_record ~tag ~client ~n ~parent_dn =
  let uid = Printf.sprintf "%s-c%d-%d" tag client n in
  String.concat "\n"
    [
      Printf.sprintf "dn: uid=%s, %s" uid parent_dn;
      "changetype: add";
      "objectClass: person";
      "objectClass: staffmember";
      "objectClass: top";
      "uid: " ^ uid;
      Printf.sprintf "name: traffic person %s" uid;
    ]

(* --- the run ------------------------------------------------------------- *)

type tally = {
  mutable ok_reads : int;
  mutable ok_writes : int;
  mutable bad : int;
  mutable lat : float list;  (* seconds, successes only *)
}

let discover_units ~host ~port =
  match Bounds_net.Client.connect ~host ~port ~retries:40 () with
  | Error e -> Error e
  | Ok c ->
      let r =
        Bounds_net.Client.request c
          (Bounds_net.Proto.Search
             { base = None; scope = "sub"; filter = "(objectClass=orgUnit)" })
      in
      Bounds_net.Client.close c;
      (match r with
      | Ok (Bounds_net.Proto.Reply body) -> (
          match String.split_on_char '\n' body with
          | _count :: dns -> (
              match List.filter (fun s -> s <> "") dns with
              | [] -> Error "no orgUnit entries to write under"
              | dns -> Ok dns)
          | [] -> Error "empty search reply")
      | Ok (Bounds_net.Proto.Failed e) -> Error ("unit discovery: " ^ e)
      | Error e -> Error ("unit discovery: " ^ e))

let worker ~host ~port ~seed ~tag ~write_ratio ~requests ~units ~client tally =
  match Bounds_net.Client.connect ~host ~port ~retries:40 () with
  | Error _ -> tally.bad <- tally.bad + requests
  | Ok c ->
      let rng = Random.State.make [| seed; client; 0x7a |] in
      let reads = read_templates units in
      let unit_arr = Array.of_list units in
      for n = 0 to requests - 1 do
        let is_write = Random.State.float rng 1.0 < write_ratio in
        let req =
          if is_write then
            let parent_dn =
              unit_arr.(Random.State.int rng (Array.length unit_arr))
            in
            Bounds_net.Proto.Apply
              (fresh_person_record ~tag ~client ~n ~parent_dn)
          else reads.(Random.State.int rng (Array.length reads))
        in
        let t0 = Unix.gettimeofday () in
        match Bounds_net.Client.request c req with
        | Ok (Bounds_net.Proto.Reply _) ->
            tally.lat <- (Unix.gettimeofday () -. t0) :: tally.lat;
            if is_write then tally.ok_writes <- tally.ok_writes + 1
            else tally.ok_reads <- tally.ok_reads + 1
        | Ok (Bounds_net.Proto.Failed _) | Error _ -> tally.bad <- tally.bad + 1
      done;
      Bounds_net.Client.close c

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let run ?(host = "127.0.0.1") ~port ~clients ~requests ?(write_ratio = 0.2)
    ?(seed = 17) ?(tag = "t") () =
  if clients < 1 then invalid_arg "Traffic.run: clients < 1";
  match discover_units ~host ~port with
  | Error _ as e -> e
  | Ok units ->
      let tallies =
        Array.init clients (fun _ ->
            { ok_reads = 0; ok_writes = 0; bad = 0; lat = [] })
      in
      let t0 = Unix.gettimeofday () in
      let threads =
        List.init clients (fun client ->
            Thread.create
              (fun () ->
                worker ~host ~port ~seed ~tag ~write_ratio ~requests ~units
                  ~client tallies.(client))
              ())
      in
      List.iter Thread.join threads;
      let elapsed = Unix.gettimeofday () -. t0 in
      let reads = Array.fold_left (fun a t -> a + t.ok_reads) 0 tallies in
      let writes = Array.fold_left (fun a t -> a + t.ok_writes) 0 tallies in
      let failed = Array.fold_left (fun a t -> a + t.bad) 0 tallies in
      let lats =
        Array.fold_left (fun a t -> List.rev_append t.lat a) [] tallies
        |> Array.of_list
      in
      Array.sort compare lats;
      let sum = Array.fold_left ( +. ) 0. lats in
      let n = Array.length lats in
      let ms x = 1000. *. x in
      Ok
        {
          clients;
          requests = reads + writes;
          reads;
          writes;
          failed;
          elapsed;
          mean_ms = (if n = 0 then 0. else ms (sum /. float_of_int n));
          p50_ms = ms (percentile lats 0.50);
          p95_ms = ms (percentile lats 0.95);
          max_ms = (if n = 0 then 0. else ms lats.(n - 1));
        }
