open Bounds_model

type error = { line : int; message : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message
let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

exception Err of error

let err line fmt = Printf.ksprintf (fun message -> raise (Err { line; message })) fmt

(* --- minimal base64 ------------------------------------------------- *)

let b64_alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let b64_decode_char ~at c =
  match String.index_opt b64_alphabet c with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "invalid base64 character %C at offset %d" c at)

let b64_decode s =
  (* no whitespace tolerance: LDIF line folding is undone before the
     base64 text ever reaches us, so embedded newlines are corruption *)
  let n = String.length s in
  if n mod 4 <> 0 then invalid_arg "base64 length not a multiple of 4";
  (* '=' is padding, legal only as the final one or two bytes; anywhere
     else it silently truncated data before being rejected here *)
  String.iteri
    (fun i c ->
      if c = '=' && i < n - 2 then
        invalid_arg (Printf.sprintf "stray base64 padding '=' at offset %d" i))
    s;
  if n >= 2 && s.[n - 2] = '=' && s.[n - 1] <> '=' then
    invalid_arg (Printf.sprintf "stray base64 padding '=' at offset %d" (n - 2));
  let buf = Buffer.create (n * 3 / 4) in
  let i = ref 0 in
  while !i < n do
    let c0 = s.[!i] and c1 = s.[!i + 1] and c2 = s.[!i + 2] and c3 = s.[!i + 3] in
    let v0 = b64_decode_char ~at:!i c0 and v1 = b64_decode_char ~at:(!i + 1) c1 in
    Buffer.add_char buf (Char.chr ((v0 lsl 2) lor (v1 lsr 4)));
    if c2 <> '=' then begin
      let v2 = b64_decode_char ~at:(!i + 2) c2 in
      Buffer.add_char buf (Char.chr (((v1 land 0xf) lsl 4) lor (v2 lsr 2)));
      if c3 <> '=' then begin
        let v3 = b64_decode_char ~at:(!i + 3) c3 in
        Buffer.add_char buf (Char.chr (((v2 land 0x3) lsl 6) lor v3))
      end
    end;
    i := !i + 4
  done;
  Buffer.contents buf

let b64_encode s =
  let buf = Buffer.create ((String.length s + 2) / 3 * 4) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let b0 = Char.code s.[!i] in
    let b1 = if !i + 1 < n then Char.code s.[!i + 1] else 0 in
    let b2 = if !i + 2 < n then Char.code s.[!i + 2] else 0 in
    Buffer.add_char buf b64_alphabet.[b0 lsr 2];
    Buffer.add_char buf b64_alphabet.[((b0 land 0x3) lsl 4) lor (b1 lsr 4)];
    if !i + 1 < n then
      Buffer.add_char buf b64_alphabet.[((b1 land 0xf) lsl 2) lor (b2 lsr 6)]
    else Buffer.add_char buf '=';
    if !i + 2 < n then Buffer.add_char buf b64_alphabet.[b2 land 0x3f]
    else Buffer.add_char buf '=';
    i := !i + 3
  done;
  Buffer.contents buf

(* --- reading --------------------------------------------------------- *)

let split_attr_line line body =
  match String.index_opt body ':' with
  | None -> err line "expected 'attr: value', got %S" body
  | Some i ->
      let attr = String.sub body 0 i in
      let rest = String.sub body (i + 1) (String.length body - i - 1) in
      if String.length rest > 0 && rest.[0] = ':' then
        (* base64 text itself is whitespace-insensitive; the decoded bytes
           carry any significant whitespace *)
        let raw = String.trim (String.sub rest 1 (String.length rest - 1)) in
        let decoded = try b64_decode raw with Invalid_argument m -> err line "%s" m in
        (attr, decoded)
      else
        (* RFC 2849: exactly one optional space separates ':' from the
           value; anything beyond it — including trailing whitespace — is
           value content (the writer base64-encodes values that need it) *)
        let value =
          if String.length rest > 0 && rest.[0] = ' ' then
            String.sub rest 1 (String.length rest - 1)
          else rest
        in
        (attr, value)

let norm_dn d =
  String.split_on_char ',' d |> List.map (fun p -> String.lowercase_ascii (String.trim p))
  |> String.concat ","

let parent_dn d =
  match String.index_opt d ',' with
  | None -> None
  | Some i -> Some (String.sub d (i + 1) (String.length d - i - 1))

let first_rdn d =
  match String.index_opt d ',' with
  | None -> String.trim d
  | Some i -> String.trim (String.sub d 0 i)

(* The reader is one streaming pass: physical lines are folded into
   logical lines, logical lines are grouped into records, and each
   finished record becomes one entry handed to the caller — O(record)
   memory over the input, which is what lets a checkpoint load stream a
   large body without materializing line or record lists. *)
let fold_entries ?id_of ~typing f init s =
  let len = String.length s in
  let by_dn = Hashtbl.create 64 in
  let ordinal = ref 0 in
  let acc = ref init in
  (* record under assembly: dn line number, dn, pairs in reverse *)
  let rec_line = ref 0 in
  let rec_dn = ref None in
  let rec_pairs = ref [] in
  let finish_record () =
    match !rec_dn with
    | None -> ()
    | Some dn ->
        let line = !rec_line and pairs = List.rev !rec_pairs in
        rec_dn := None;
        rec_pairs := [];
        let classes, attr_pairs =
          List.fold_left
            (fun (classes, pairs) (attr_raw, value_raw) ->
              match Attr.of_string_opt attr_raw with
              | None -> err line "invalid attribute name %S" attr_raw
              | Some a ->
                  if Attr.equal a Attr.object_class then
                    match Oclass.of_string_opt value_raw with
                    | Some c -> (Oclass.Set.add c classes, pairs)
                    | None -> err line "invalid object class name %S" value_raw
                  else
                    let ty = Typing.find typing a in
                    (match Value.parse ty value_raw with
                    | Ok v -> (classes, (a, v) :: pairs)
                    | Error m -> err line "attribute %s: %s" (Attr.to_string a) m))
            (Oclass.Set.empty, []) pairs
        in
        if Oclass.Set.is_empty classes then
          err line "entry %s has no objectClass" dn;
        let id = match id_of with Some f -> f !ordinal | None -> !ordinal in
        incr ordinal;
        let entry = Entry.make ~id ~rdn:(first_rdn dn) ~classes (List.rev attr_pairs) in
        let parent =
          match parent_dn dn with
          | None -> None
          | Some pd -> (
              match Hashtbl.find_opt by_dn (norm_dn pd) with
              | Some pid -> Some pid
              | None -> err line "parent entry %S not yet defined" pd)
        in
        Hashtbl.replace by_dn (norm_dn dn) id;
        (match f ~parent entry !acc with
        | Ok a -> acc := a
        | Error m -> err line "%s" m)
  in
  let dispatch line body =
    let attr, value = split_attr_line line body in
    match !rec_dn with
    | None ->
        if String.lowercase_ascii (String.trim attr) <> "dn" then
          err line "record must start with 'dn:', got %S" body;
        rec_line := line;
        rec_dn := Some value
    | Some _ -> rec_pairs := (attr, value) :: !rec_pairs
  in
  let pending = ref None in
  let flush_pending () =
    match !pending with
    | None -> ()
    | Some (n, body) ->
        pending := None;
        dispatch n body
  in
  let lineno = ref 0 in
  let handle l =
    let l =
      let n = String.length l in
      if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l
    in
    if String.length l > 0 && l.[0] = ' ' then
      (* continuation of the pending logical line (or a dropped comment) *)
      match !pending with
      | Some (n, body) ->
          pending := Some (n, body ^ String.sub l 1 (String.length l - 1))
      | None -> ()
    else begin
      flush_pending ();
      if l = "" then finish_record ()
      else if l.[0] = '#' then ()
      else pending := Some (!lineno, l)
    end
  in
  let rec lines pos =
    incr lineno;
    match if pos >= len then None else String.index_from_opt s pos '\n' with
    | Some j ->
        handle (String.sub s pos (j - pos));
        lines (j + 1)
    | None -> handle (String.sub s pos (len - pos))
  in
  try
    lines 0;
    flush_pending ();
    finish_record ();
    Ok !acc
  with Err e -> Error e

let parse ?(first_id = 0) ~typing s =
  fold_entries
    ~id_of:(fun k -> first_id + k)
    ~typing
    (fun ~parent e inst ->
      Result.map_error Instance.error_to_string (Instance.add ~parent e inst))
    Instance.empty s

let parse_exn ?first_id ~typing s =
  match parse ?first_id ~typing s with
  | Ok inst -> inst
  | Error e -> failwith (error_to_string e)

(* --- writing --------------------------------------------------------- *)

(* RFC 2849 SAFE-STRING: printable ASCII, not starting with space, ':' or
   '<' — and not {e ending} with space either, which the one-separator
   reader could not tell apart from the separator's own padding. *)
let safe_value v =
  v = ""
  || (String.for_all (fun c -> Char.code c >= 0x20 && Char.code c < 0x7f) v
     && v.[0] <> ' ' && v.[0] <> ':' && v.[0] <> '<'
     && v.[String.length v - 1] <> ' ')

let to_string inst =
  let buf = Buffer.create 1024 in
  let emit_pair a v =
    let raw = Value.to_string v in
    if safe_value raw then Buffer.add_string buf (Printf.sprintf "%s: %s\n" a raw)
    else Buffer.add_string buf (Printf.sprintf "%s:: %s\n" a (b64_encode raw))
  in
  Instance.iter_preorder
    (fun ~depth:_ e ->
      let id = Entry.id e in
      Buffer.add_string buf (Printf.sprintf "dn: %s\n" (Instance.dn inst id));
      Oclass.Set.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "objectClass: %s\n" (Oclass.to_string c)))
        (Entry.classes e);
      List.iter (fun (a, v) -> emit_pair (Attr.to_string a) v) (Entry.stored_pairs e);
      Buffer.add_char buf '\n')
    inst;
  Buffer.contents buf

let pp ppf inst = Format.pp_print_string ppf (to_string inst)

(* --- change records --------------------------------------------------- *)

(* LDIF change records against an existing instance: each record is
   `dn:` plus either `changetype: add` (the default) with the entry's
   attribute lines, or `changetype: delete`.  DNs are resolved against
   [inst] plus the records already built — an add may parent later adds
   of the same document — and fresh ids are assigned past the
   instance's; the ops are ready for Directory.apply / Store.apply.
   Shared by the CLI `update` verb and the network server's write path
   (where the server resolves at admission time, against the version
   the transaction will actually apply to). *)
let parse_changes ~typing inst text =
  let records =
    String.split_on_char '\n' text
    |> List.fold_left
         (fun (recs, cur) line ->
           let line = String.trim line in
           if line = "" then
             match cur with [] -> (recs, []) | c -> (List.rev c :: recs, [])
           else if String.length line > 0 && line.[0] = '#' then (recs, cur)
           else (recs, line :: cur))
         ([], [])
    |> fun (recs, cur) ->
    List.rev (match cur with [] -> recs | c -> List.rev c :: recs)
  in
  let next_id = ref (Instance.fresh_id inst) in
  let dn_to_id = Hashtbl.create 16 in
  Instance.iter
    (fun e ->
      Hashtbl.replace dn_to_id
        (norm_dn (Instance.dn inst (Entry.id e)))
        (Entry.id e))
    inst;
  let resolve dn =
    match Hashtbl.find_opt dn_to_id (norm_dn dn) with
    | Some id -> Ok id
    | None -> Error (Printf.sprintf "unknown dn %S" dn)
  in
  let split line =
    match String.index_opt line ':' with
    | Some i ->
        Ok
          ( String.trim (String.sub line 0 i),
            String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    | None -> Error (Printf.sprintf "malformed line %S" line)
  in
  let ( let* ) = Result.bind in
  let rec build ops = function
    | [] -> Ok (List.rev ops)
    | record :: rest -> (
        match record with
        | [] -> build ops rest
        | dn_line :: body ->
            let* k, dn = split dn_line in
            if String.lowercase_ascii k <> "dn" then
              Error (Printf.sprintf "record must start with dn:, got %S" dn_line)
            else
              let changetype, attrs =
                match body with
                | l :: more
                  when String.lowercase_ascii l |> fun s ->
                       String.length s >= 10 && String.sub s 0 10 = "changetype"
                  ->
                    ( String.trim
                        (String.sub l
                           (String.index l ':' + 1)
                           (String.length l - String.index l ':' - 1)),
                      more )
                | _ -> ("add", body)
              in
              (match String.lowercase_ascii changetype with
              | "delete" ->
                  let* id = resolve dn in
                  build (Update.Delete id :: ops) rest
              | "add" ->
                  let* parent =
                    match parent_dn dn with
                    | None -> Ok None
                    | Some p ->
                        let* pid = resolve p in
                        Ok (Some pid)
                  in
                  let rdn = first_rdn dn in
                  let* classes, pairs =
                    List.fold_left
                      (fun acc line ->
                        let* classes, pairs = acc in
                        let* k, v = split line in
                        match Attr.of_string_opt k with
                        | None -> Error (Printf.sprintf "bad attribute %S" k)
                        | Some a ->
                            if Attr.equal a Attr.object_class then
                              match Oclass.of_string_opt v with
                              | Some cls -> Ok (cls :: classes, pairs)
                              | None -> Error (Printf.sprintf "bad class %S" v)
                            else
                              let* value = Value.parse (Typing.find typing a) v in
                              Ok (classes, (a, value) :: pairs))
                      (Ok ([], []))
                      attrs
                  in
                  if classes = [] then
                    Error (Printf.sprintf "%s: no objectClass" dn)
                  else begin
                    let id = !next_id in
                    incr next_id;
                    Hashtbl.replace dn_to_id (norm_dn dn) id;
                    let entry =
                      Entry.make ~id ~rdn
                        ~classes:(Oclass.Set.of_list classes)
                        (List.rev pairs)
                    in
                    build (Update.Insert { parent; entry } :: ops) rest
                  end
              | other -> Error (Printf.sprintf "unsupported changetype %S" other)))
  in
  build [] records
