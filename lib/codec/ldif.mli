(** LDIF interchange: read and write directory instances.

    The reader accepts the core of RFC 2849: records separated by blank
    lines, [dn:] first, one [attr: value] pair per line, continuation
    lines starting with a single space, [#] comments, and base64 values
    ([attr:: b64]).  Values are typed through a {!Typing.t} registry; the
    entry's class set is derived from its [objectClass] lines
    (Definition 2.1 condition 3b therefore holds by construction).

    The forest shape is recovered from the DNs: an entry whose DN minus
    its first RDN equals the DN of a previously read entry becomes that
    entry's child; otherwise it is a root.  Parents must be written before
    children (the natural LDIF order). *)

open Bounds_model

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** [fold_entries ~typing f init s] streams the document: each record is
    built into an {!Entry.t} and handed to [f] with its resolved parent,
    in reading order, without materializing line or record lists.  The
    k-th record (0-based) gets id [id_of k] (default [k]).  An [Error]
    from [f] becomes a positioned {!error} at the record's [dn:] line —
    this is how a checkpoint load reports an {!Instance.add} rejection.
    Folding stops at the first error. *)
val fold_entries :
  ?id_of:(int -> Entry.id) ->
  typing:Typing.t ->
  (parent:Entry.id option -> Entry.t -> 'a -> ('a, string) result) ->
  'a ->
  string ->
  ('a, error) result

(** [parse ~typing s] reads a whole LDIF document.  Entry ids are assigned
    in reading order starting from [first_id] (default 0). *)
val parse : ?first_id:int -> typing:Typing.t -> string -> (Instance.t, error) result

val parse_exn : ?first_id:int -> typing:Typing.t -> string -> Instance.t

(** [to_string inst] renders the instance in parent-before-child order;
    [parse] of the result reconstructs an instance equal up to entry
    ids. *)
val to_string : Instance.t -> string

val pp : Format.formatter -> Instance.t -> unit

(** {2 Base64} — the RFC 4648 codec behind [attr:: value] lines, exposed
    for decode-vector tests and differential fuzzing. *)

val b64_encode : string -> string

(** Strict decoder: rejects non-alphabet bytes, lengths not a multiple of
    four, and [=] padding anywhere but the final one or two positions.
    Raises [Invalid_argument] with a positioned message on malformed
    input. *)
val b64_decode : string -> string

(** {2 Change records}

    [parse_changes ~typing inst text] reads LDIF change records —
    [dn:] plus [changetype: add] (the default; attribute lines follow)
    or [changetype: delete] — into update ops against [inst]: DNs
    resolve against the instance {e and} the records already read (an
    add may parent later adds), fresh ids are assigned past the
    instance's.  Because resolution is against a concrete version,
    callers admitting concurrently (the network server) must parse at
    admission time, against the version the transaction will apply to. *)
val parse_changes :
  typing:Typing.t ->
  Instance.t ->
  string ->
  (Update.op list, string) result
