let check ?(extensions = true) ?pool ?index ?vindex ?memo ?memoize schema inst =
  Content_legality.check ?pool schema inst
  @ Structure_legality.check ?pool ?index ?vindex ?memo ?memoize schema inst
  @
  if extensions then
    Single_valued.check ?pool schema inst @ Keys.check ?pool schema inst
  else []

let is_legal ?extensions ?pool ?index ?vindex ?memo ?memoize schema inst =
  check ?extensions ?pool ?index ?vindex ?memo ?memoize schema inst = []
