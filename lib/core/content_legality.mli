(** Content-schema legality (Section 3.1).

    Content legality is checkable one entry at a time — the property that
    makes content checks trivially incremental under updates (Section 4.2).
    Per entry, the class-schema test runs in
    O(|class(e)| + max |Aux(c)| · depth(H)) and the attribute-schema test
    in O(|val(e)| + Σ_{c ∈ class(e)} |a(c)|), as stated in the paper. *)

open Bounds_model

(** All content violations of a single entry. *)
val check_entry : Schema.t -> Entry.t -> Violation.t list

(** Class-schema clauses only (Definition 2.7, "Class Schema"). *)
val check_classes : Schema.t -> Entry.t -> Violation.t list

(** Attribute-schema clauses only (Definition 2.7, "Attribute Schema"). *)
val check_attributes : Schema.t -> Entry.t -> Violation.t list

(** Typing (Definition 2.1, condition 3a). *)
val check_typing : Schema.t -> Entry.t -> Violation.t list

(** [check schema inst] checks every entry.  With a [pool], entries are
    chunked across the workers; the violation list is identical to the
    sequential check (per-entry lists concatenated in traversal order). *)
val check : ?pool:Bounds_par.Pool.t -> Schema.t -> Instance.t -> Violation.t list

val entry_is_legal : Schema.t -> Entry.t -> bool
val is_legal : Schema.t -> Instance.t -> bool
