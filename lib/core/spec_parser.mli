(** Parser for the bounding-schema specification language.

    {v
    # comment until end of line

    attribute <name> : <type>          type: string|int|bool|dn|telephone

    class <name> [extends <parent>] [{ <decls> }]
    auxiliary <name> [{ <decls> }]
      decls:  required: a1, a2 ;
              allowed:  a3, a4 ;
              aux:      x1, x2 ;       # core classes only

    require exists <class>
    require <class> child <class>      # every LHS entry has such a child
    require <class> descendant <class>
    require <class> parent <class>
    require <class> ancestor <class>
    forbid  <class> child <class>
    forbid  <class> descendant <class>

    single-valued a1, a2
    key a1, a2
    v}

    [class x] with no [extends] means [extends top].  Parent classes must
    be declared before their children.  Semicolons and newlines are
    interchangeable separators. *)

(** Errors are the shared {!Bounds_model.Parse_error.t}; here [pos] is a
    1-based source line number ([0] marks whole-schema assembly errors
    with no single offending line). *)
type error = Bounds_model.Parse_error.t

val pp_error : Format.formatter -> error -> unit

(** Renders as ["line %d: %s"]. *)
val error_to_string : error -> string

val parse : string -> (Schema.t, error) result
val parse_exn : string -> Schema.t
