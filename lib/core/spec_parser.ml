open Bounds_model

type error = Parse_error.t

let error_to_string = Parse_error.to_line_string
let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

exception Err of Parse_error.t

let err line fmt =
  Printf.ksprintf (fun msg -> raise (Err (Parse_error.make ~pos:line msg))) fmt

(* --- tokens ----------------------------------------------------------- *)

type token =
  | Word of string
  | Lbrace
  | Rbrace
  | Colon
  | Comma
  | Semi

let pp_token = function
  | Word w -> Printf.sprintf "%S" w
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Colon -> "':'"
  | Comma -> "','"
  | Semi -> "';'"

let word_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
  | _ -> false

let tokenize src =
  let toks = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    (match src.[!i] with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '#' ->
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
    | '{' ->
        toks := (Lbrace, !line) :: !toks;
        incr i
    | '}' ->
        toks := (Rbrace, !line) :: !toks;
        incr i
    | ':' ->
        toks := (Colon, !line) :: !toks;
        incr i
    | ',' ->
        toks := (Comma, !line) :: !toks;
        incr i
    | ';' ->
        toks := (Semi, !line) :: !toks;
        incr i
    | c when word_char c ->
        let start = !i in
        while !i < n && word_char src.[!i] do
          incr i
        done;
        toks := (Word (String.sub src start (!i - start)), !line) :: !toks
    | c -> err !line "unexpected character %C" c);
  done;
  List.rev !toks

(* --- parsing ----------------------------------------------------------- *)

type state = { mutable toks : (token * int) list; mutable last_line : int }

let peek st = match st.toks with [] -> None | (t, _) :: _ -> Some t

let next st =
  match st.toks with
  | [] -> err st.last_line "unexpected end of input"
  | (t, l) :: rest ->
      st.toks <- rest;
      st.last_line <- l;
      (t, l)

let expect st want pp_want =
  let t, l = next st in
  if t <> want then err l "expected %s, found %s" pp_want (pp_token t)

let word st =
  match next st with
  | Word w, _ -> w
  | t, l -> err l "expected a name, found %s" (pp_token t)

let skip_separators st =
  let rec go () =
    match peek st with
    | Some Semi ->
        ignore (next st);
        go ()
    | _ -> ()
  in
  go ()

let attr_of st line w =
  match Attr.of_string_opt w with
  | Some a -> a
  | None -> err line "invalid attribute name %S" w
  [@@warning "-27"]

let class_of st line w =
  ignore st;
  match Oclass.of_string_opt w with
  | Some c -> c
  | None -> err line "invalid class name %S" w

(* a, b, c  — at least one *)
let name_list st =
  let rec go acc =
    let w = word st in
    let acc = w :: acc in
    match peek st with
    | Some Comma ->
        ignore (next st);
        go acc
    | _ -> List.rev acc
  in
  go []

type class_body = {
  required : string list;
  allowed : string list;
  aux : string list;
}

let empty_body = { required = []; allowed = []; aux = [] }

let parse_body st =
  let rec go body =
    skip_separators st;
    match peek st with
    | Some Rbrace ->
        ignore (next st);
        body
    | Some (Word w) -> (
        let _, l = next st in
        expect st Colon "':'";
        let names = name_list st in
        match String.lowercase_ascii w with
        | "required" -> go { body with required = body.required @ names }
        | "allowed" -> go { body with allowed = body.allowed @ names }
        | "aux" -> go { body with aux = body.aux @ names }
        | _ -> err l "expected required/allowed/aux, found %S" w)
    | Some t -> err st.last_line "unexpected %s in class body" (pp_token t)
    | None -> err st.last_line "unterminated class body"
  in
  go empty_body

type acc = {
  mutable typing : Typing.t;
  mutable attrs : Attribute_schema.t;
  mutable classes : Class_schema.t;
  mutable structure : Structure_schema.t;
  mutable single_valued : Attr.t list;
  mutable keys : Attr.t list;
  mutable pending_aux : (int * Oclass.t * string list) list;
      (* aux links resolved after all declarations *)
}

let handle_result line = function Ok v -> v | Error m -> err line "%s" m

let parse_statement st acc =
  let t, line = next st in
  match t with
  | Word w -> (
      match String.lowercase_ascii w with
      | "attribute" ->
          let name = word st in
          expect st Colon "':'";
          let ty_word = word st in
          let a = attr_of st line name in
          let ty = handle_result line (Atype.of_string ty_word) in
          acc.typing <- handle_result line (Typing.declare a ty acc.typing)
      | "class" | "auxiliary" ->
          let is_aux = String.lowercase_ascii w = "auxiliary" in
          let name = class_of st line (word st) in
          let parent =
            match peek st with
            | Some (Word kw) when String.lowercase_ascii kw = "extends" ->
                ignore (next st);
                Some (class_of st line (word st))
            | _ -> None
          in
          (if is_aux then begin
             if parent <> None then err line "auxiliary classes have no superclass";
             if not (Oclass.equal name Oclass.top) then
               acc.classes <- handle_result line (Class_schema.add_aux name acc.classes)
           end
           else if not (Oclass.equal name Oclass.top) then
             acc.classes <-
               handle_result line
                 (Class_schema.add_core name
                    ~parent:(Option.value ~default:Oclass.top parent)
                    acc.classes));
          let body =
            match peek st with
            | Some Lbrace ->
                ignore (next st);
                parse_body st
            | _ -> empty_body
          in
          if body.required <> [] || body.allowed <> [] then
            acc.attrs <-
              handle_result line
                (Attribute_schema.add_class name
                   ~required:(List.map (attr_of st line) body.required)
                   ~allowed:(List.map (attr_of st line) body.allowed)
                   acc.attrs);
          if body.aux <> [] then begin
            if is_aux then err line "auxiliary classes cannot list aux classes";
            acc.pending_aux <- (line, name, body.aux) :: acc.pending_aux
          end
      | "require" -> (
          let first = word st in
          match String.lowercase_ascii first with
          | "exists" ->
              let c = class_of st line (word st) in
              acc.structure <- Structure_schema.require_class c acc.structure
          | _ ->
              let ci = class_of st line first in
              let rel = handle_result line (Structure_schema.rel_of_string (word st)) in
              let cj = class_of st line (word st) in
              acc.structure <- Structure_schema.require ci rel cj acc.structure)
      | "forbid" ->
          let ci = class_of st line (word st) in
          let f = handle_result line (Structure_schema.forb_of_string (word st)) in
          let cj = class_of st line (word st) in
          acc.structure <- Structure_schema.forbid ci f cj acc.structure
      | "single-valued" ->
          acc.single_valued <-
            acc.single_valued @ List.map (attr_of st line) (name_list st)
      | "key" -> acc.keys <- acc.keys @ List.map (attr_of st line) (name_list st)
      | _ -> err line "unknown statement %S" w)
  | t -> err line "expected a statement, found %s" (pp_token t)

let parse src =
  try
    let st = { toks = tokenize src; last_line = 1 } in
    let acc =
      {
        typing = Typing.default;
        attrs = Attribute_schema.empty;
        classes = Class_schema.empty;
        structure = Structure_schema.empty;
        single_valued = [];
        keys = [];
        pending_aux = [];
      }
    in
    skip_separators st;
    while peek st <> None do
      parse_statement st acc;
      skip_separators st
    done;
    List.iter
      (fun (line, core, auxs) ->
        List.iter
          (fun aux ->
            let aux = class_of st line aux in
            acc.classes <- handle_result line (Class_schema.allow_aux ~core aux acc.classes))
          auxs)
      (List.rev acc.pending_aux);
    match
      Schema.make ~typing:acc.typing ~attributes:acc.attrs ~classes:acc.classes
        ~structure:acc.structure
        ~single_valued:acc.single_valued ~keys:acc.keys ()
    with
    | Ok schema -> Ok schema
    | Error msgs -> Error (Parse_error.make ~pos:0 (String.concat "; " msgs))
  with Err e -> Error e

let parse_exn src =
  match parse src with Ok s -> s | Error e -> failwith (error_to_string e)
