(** Schema-aware directory statistics.

    The paper's introduction motivates bounding-schemas with the pervasive
    {e heterogeneity} of directory entries: entities of one type differ in
    which optional attributes and auxiliary classes they carry.  This
    module measures that heterogeneity against a schema — per-class entry
    counts, how often each allowed-but-optional attribute is actually
    present, auxiliary-class adoption, and the shape of the forest. *)

open Bounds_model

type attr_fill = {
  attr : Attr.t;
  required : bool;
  present : int;  (** entries of the class carrying at least one value *)
}

type class_profile = {
  cls : Oclass.t;
  count : int;
  fills : attr_fill list;  (** one per allowed attribute of the class *)
  aux_adoption : (Oclass.t * int) list;
      (** for core classes: how many of their entries also carry each
          permitted auxiliary class *)
}

type t = {
  entries : int;
  roots : int;
  max_depth : int;
  depth_histogram : int array;  (** index = depth (0 = roots) *)
  max_fanout : int;
  classes : class_profile list;  (** schema classes, by name *)
  optional_fill_rate : float;
      (** fraction of (entry, optional allowed attribute) slots filled —
          1.0 means fully homogeneous entries, low values are the
          heterogeneity LDAP is designed for *)
}

val compute : Schema.t -> Instance.t -> t
val pp : Format.formatter -> t -> unit

(** {1 Plan profiles — the [--explain] surface} *)

type plan_explain = {
  planned_query : string;
  plan_lines : string list;
      (** one line per plan node, indented, [est=]/[actual=] columns *)
}

(** Snapshot the explain rendering of a (typically already executed)
    physical plan. *)
val explain_plan : Bounds_query.Plan.t -> plan_explain

val pp_plan_explain : Format.formatter -> plan_explain -> unit
