open Bounds_model

type result =
  | Accepted of {
      lsn : int option;
      ops : Update.op list;
      entries_before : int;
      entries_after : int;
    }
  | Rejected of { reason : Monitor.rejection; ops : Update.op list }

let accepted = function Accepted _ -> true | Rejected _ -> false
let ops = function Accepted { ops; _ } | Rejected { ops; _ } -> ops
let lsn = function Accepted { lsn; _ } -> lsn | Rejected _ -> None
let reason = function Accepted _ -> None | Rejected { reason; _ } -> Some reason

let entries_delta = function
  | Accepted { entries_before; entries_after; _ } ->
      entries_after - entries_before
  | Rejected _ -> 0

let with_lsn l = function
  | Accepted a -> Accepted { a with lsn = Some l }
  | Rejected _ as r -> r

let pp ppf = function
  | Accepted { lsn; ops; entries_before; entries_after } ->
      Format.fprintf ppf "accepted %d op(s)%a (%d -> %d entries)"
        (List.length ops)
        (fun ppf -> function
          | None -> ()
          | Some l -> Format.fprintf ppf " at lsn %d" l)
        lsn entries_before entries_after
  | Rejected { reason; ops } ->
      Format.fprintf ppf "rejected %d op(s): %a" (List.length ops)
        Monitor.pp_rejection reason
