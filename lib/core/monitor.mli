(** Stateful legality monitor.

    Wraps an instance known to be legal and admits only legality-preserving
    updates, checked incrementally.  Maintains the per-class entry counts
    that make required-class checks O(1) under deletion (the counting
    extension the paper suggests at the end of Section 4), and — when
    extensions are on — a key-value table making directory-wide key checks
    O(|Δ|) per update.

    The monitor is persistent: a rejected update leaves the previous value
    usable, and old versions remain valid snapshots. *)

open Bounds_model

type t

(** [create schema inst] runs a full legality check and builds the
    indexes.  [extensions] (default [true]) also enforces single-valued
    attributes and keys.  [pool] parallelizes the initial full check (the
    expensive O(|D|) admission scan); subsequent incremental checks are
    O(|Δ|) and run sequentially.  [index]/[vindex]/[memo]/[memoize] are
    passed through to {!Legality.check} for the admission scan — an
    existing evaluation-index snapshot of [inst] is reused rather than
    rebuilt, and a caller-supplied memo comes back prewarmed with the
    obligation queries (see {!Directory.open_}). *)
val create :
  ?extensions:bool ->
  ?pool:Bounds_par.Pool.t ->
  ?index:Bounds_query.Index.t ->
  ?vindex:Bounds_query.Vindex.t ->
  ?memo:Bounds_query.Plan.memo ->
  ?memoize:bool ->
  Schema.t ->
  Instance.t ->
  (t, Violation.t list) result

(** [of_index_trusted schema index] wraps [index]'s instance as a monitor
    {e without} the admission scan — the caller vouches that the instance
    is legal (e.g. a batch rebuild of state that was admitted transaction
    by transaction; see {!Directory.Bulk}).  The counting and key tables
    are recomputed from the instance in O(|D|).  Feeding an illegal
    instance through this constructor produces a monitor whose invariant
    is broken — it is deliberately not exported to application code paths
    that have not already paid for admission. *)
val of_index_trusted :
  ?extensions:bool -> Schema.t -> Bounds_query.Index.t -> t

val instance : t -> Instance.t
val schema : t -> Schema.t

(** The live evaluation index of {!instance}: seeded by the admission
    scan (or taken from [create]'s [index] argument) and then patched
    across every accepted update with {!Bounds_query.Index.graft} /
    [prune] / [replace_entry] — each Δ is indexed once and spliced by
    interval shifting, never re-traversed.  Old monitor versions keep
    their own index snapshot. *)
val index : t -> Bounds_query.Index.t

(** Number of entries currently belonging to the class. *)
val class_count : t -> Oclass.t -> int

(** [insert_subtree ~parent delta m] — Δ must be single-rooted with ids
    fresh for the monitored instance.  On acceptance, the new monitor
    comes with the rank-space edits the graft performed on the live
    index ({!Bounds_query.Index.Builder.splices}), for callers migrating
    rank-indexed caches alongside. *)
val insert_subtree :
  parent:Entry.id option ->
  Instance.t ->
  t ->
  (t * Bounds_query.Index.splice list, Violation.t list) result

val delete_subtree :
  Entry.id -> t -> (t * Bounds_query.Index.splice list, Violation.t list) result

(** [modify_entry id f m] — LDAP's attribute-level modification.  The
    update must preserve the entry's class set ([f] changing it is
    rejected as a violation-free [Error] via [Invalid_argument]): with
    classes fixed, legality is affected only through the entry's own
    content and the key table, so the check is O(entry) — the content
    locality of Section 3.1 once more. *)
val modify_entry :
  Entry.id -> (Entry.t -> Entry.t) -> t -> (t, Violation.t list) result

type rejection =
  | Bad_ops of string
  | Illegal of { step : int; violations : Violation.t list }

val pp_rejection : Format.formatter -> rejection -> unit

(** Whole transaction, atomically: decomposed with {!Transaction}, each
    subtree step checked incrementally; on rejection the monitor is
    unchanged.  On acceptance, the accompanying splice list concatenates
    the per-step rank-space edits in application order — the exact
    input {!Bounds_query.Plan.memo_apply} replays over cached bitsets. *)
val apply :
  Update.op list -> t -> (t * Bounds_query.Index.splice list, rejection) result

(** Trusted replay of one transaction: same decomposition and the same
    index/count/key-table maintenance as {!apply} (including the
    returned splices), but {e no} legality checks — for records that
    already passed admission when they were first acknowledged (Theorem
    4.1: the monitor only ever admits legality-preserving steps, so
    re-checking a logged transaction can never change the verdict).
    Structural damage — ops that no longer decompose or splice against
    the instance — still rejects as [Bad_ops]; the monitor is unchanged
    in that case. *)
val replay :
  Update.op list -> t -> (t * Bounds_query.Index.splice list, rejection) result
