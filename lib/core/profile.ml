open Bounds_model

type attr_fill = { attr : Attr.t; required : bool; present : int }

type class_profile = {
  cls : Oclass.t;
  count : int;
  fills : attr_fill list;
  aux_adoption : (Oclass.t * int) list;
}

type t = {
  entries : int;
  roots : int;
  max_depth : int;
  depth_histogram : int array;
  max_fanout : int;
  classes : class_profile list;
  optional_fill_rate : float;
}

let compute (schema : Schema.t) inst =
  let entries = Instance.size inst in
  let depths = Hashtbl.create 16 in
  let max_depth = ref 0 and max_fanout = ref 0 in
  Instance.iter_preorder
    (fun ~depth e ->
      Hashtbl.replace depths depth (1 + Option.value ~default:0 (Hashtbl.find_opt depths depth));
      if depth > !max_depth then max_depth := depth;
      let fanout = List.length (Instance.children inst (Entry.id e)) in
      if fanout > !max_fanout then max_fanout := fanout)
    inst;
  let depth_histogram =
    Array.init (if entries = 0 then 0 else !max_depth + 1) (fun d ->
        Option.value ~default:0 (Hashtbl.find_opt depths d))
  in
  let all_classes = Oclass.Set.elements (Schema.all_classes schema) in
  let opt_slots = ref 0 and opt_filled = ref 0 in
  let classes =
    List.map
      (fun cls ->
        let members =
          Instance.fold
            (fun e acc -> if Entry.has_class e cls then e :: acc else acc)
            inst []
        in
        let count = List.length members in
        let req = Attribute_schema.required schema.attributes cls in
        let fills =
          Attr.Set.fold
            (fun attr acc ->
              let required = Attr.Set.mem attr req in
              let present =
                List.length (List.filter (fun e -> Entry.values e attr <> []) members)
              in
              if not required then begin
                opt_slots := !opt_slots + count;
                opt_filled := !opt_filled + present
              end;
              { attr; required; present } :: acc)
            (Attribute_schema.allowed schema.attributes cls)
            []
          |> List.rev
        in
        let aux_adoption =
          Oclass.Set.fold
            (fun aux acc ->
              let n = List.length (List.filter (fun e -> Entry.has_class e aux) members) in
              (aux, n) :: acc)
            (Class_schema.aux_of schema.classes cls)
            []
          |> List.rev
        in
        { cls; count; fills; aux_adoption })
      all_classes
  in
  {
    entries;
    roots = List.length (Instance.roots inst);
    max_depth = (if entries = 0 then 0 else !max_depth);
    depth_histogram;
    max_fanout = !max_fanout;
    classes;
    optional_fill_rate =
      (if !opt_slots = 0 then 1.0
       else float_of_int !opt_filled /. float_of_int !opt_slots);
  }

(* {1 Plan profiles}

   The [--explain] rendering of a physical plan: the query, one indented
   line per plan node with estimated vs actual cardinalities, and — when
   the memoized obligation path produced it — the memo's hit/miss
   ledger.  Kept here so every cost-transparency surface of the CLI
   (directory statistics, plan explains) formats through one module. *)

type plan_explain = {
  planned_query : string;
  plan_lines : string list;  (** from {!Bounds_query.Plan.explain_lines} *)
}

let explain_plan p =
  {
    planned_query = Bounds_query.Query.to_string (Bounds_query.Plan.query p);
    plan_lines = Bounds_query.Plan.explain_lines p;
  }

let pp_plan_explain ppf t =
  Format.fprintf ppf "@[<v>plan for %s:@ %a@]" t.planned_query
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf l ->
         Format.fprintf ppf "  %s" l))
    t.plan_lines

let pp ppf t =
  Format.fprintf ppf "%d entries, %d roots, depth %d, max fanout %d@." t.entries
    t.roots t.max_depth t.max_fanout;
  Format.fprintf ppf "depth histogram:";
  Array.iteri (fun d n -> Format.fprintf ppf " %d:%d" d n) t.depth_histogram;
  Format.fprintf ppf "@.";
  List.iter
    (fun cp ->
      if cp.count > 0 then begin
        Format.fprintf ppf "%a: %d entries@." Oclass.pp cp.cls cp.count;
        List.iter
          (fun f ->
            Format.fprintf ppf "  %a%s: %d/%d (%.0f%%)@." Attr.pp f.attr
              (if f.required then " (required)" else "")
              f.present cp.count
              (100. *. float_of_int f.present /. float_of_int (max 1 cp.count)))
          cp.fills;
        List.iter
          (fun (aux, n) ->
            Format.fprintf ppf "  +%a: %d/%d (%.0f%%)@." Oclass.pp aux n cp.count
              (100. *. float_of_int n /. float_of_int (max 1 cp.count)))
          cp.aux_adoption
      end)
    t.classes;
  Format.fprintf ppf "optional-attribute fill rate: %.1f%% (heterogeneity %.1f%%)@."
    (100. *. t.optional_fill_rate)
    (100. *. (1. -. t.optional_fill_rate))
