open Bounds_model

type decl = { req : Attr.Set.t; alw : Attr.Set.t }
type t = decl Oclass.Map.t

let empty = Oclass.Map.empty

let add_class c ?(required = []) ?(allowed = []) t =
  if Oclass.Map.mem c t then
    Error (Printf.sprintf "class %s declared twice in attribute schema" (Oclass.to_string c))
  else
    let req = Attr.Set.of_list required in
    let alw = Attr.Set.union req (Attr.Set.of_list allowed) in
    (* An empty declaration means the same as no declaration (nothing
       required, nothing allowed); not storing it keeps the structure
       canonical — the spec language has no syntax for an empty
       declaration, so print ∘ parse must not depend on one. *)
    if Attr.Set.is_empty alw then Ok t else Ok (Oclass.Map.add c { req; alw } t)

let add_class_exn c ?required ?allowed t =
  match add_class c ?required ?allowed t with
  | Ok t -> t
  | Error m -> invalid_arg m

let classes t = Oclass.Map.fold (fun c _ s -> Oclass.Set.add c s) t Oclass.Set.empty
let mem_class t c = Oclass.Map.mem c t

let attributes t =
  Oclass.Map.fold (fun _ d s -> Attr.Set.union d.alw s) t Attr.Set.empty

let required t c =
  match Oclass.Map.find_opt c t with Some d -> d.req | None -> Attr.Set.empty

let allowed t c =
  match Oclass.Map.find_opt c t with Some d -> d.alw | None -> Attr.Set.empty

let total_allowed t =
  Oclass.Map.fold (fun _ d n -> n + Attr.Set.cardinal d.alw) t 0

let equal = Oclass.Map.equal (fun d1 d2 ->
    Attr.Set.equal d1.req d2.req && Attr.Set.equal d1.alw d2.alw)

let pp ppf t =
  let pp_attrs ppf s =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      Attr.pp ppf (Attr.Set.elements s)
  in
  Oclass.Map.iter
    (fun c d ->
      Format.fprintf ppf "@[<h>%a: required {%a} allowed {%a}@]@." Oclass.pp c
        pp_attrs d.req pp_attrs (Attr.Set.diff d.alw d.req))
    t
