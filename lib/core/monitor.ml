open Bounds_model
module Index = Bounds_query.Index
module Smap = Map.Make (String)

type t = {
  schema : Schema.t;
  inst : Instance.t;
  index : Index.t;
      (* live evaluation index of [inst], patched in place (on a
         copy-on-write version) by every accepted update — never rebuilt
         from scratch after admission *)
  extensions : bool;
  counts : int Oclass.Map.t;
  key_values : Entry.id list Smap.t;
      (* "attr\000value" -> sorted holder ids.  Holder identities (not just
         counts) let a rejection list every entry sharing the key, exactly
         as the full O(|D|) checker would. *)
}

let key_of attr v = Attr.to_string attr ^ "\000" ^ Value.to_string v

let entry_key_values (schema : Schema.t) e =
  Attr.Set.fold
    (fun attr acc ->
      List.fold_left (fun acc v -> key_of attr v :: acc) acc (Entry.values e attr))
    schema.keys []

let counts_of_instance inst =
  Instance.fold
    (fun e m ->
      Oclass.Set.fold
        (fun c m ->
          Oclass.Map.update c (fun n -> Some (1 + Option.value ~default:0 n)) m)
        (Entry.classes e) m)
    inst Oclass.Map.empty

let kv_add id kv k =
  Smap.update k
    (fun l -> Some (List.sort Int.compare (id :: Option.value ~default:[] l)))
    kv

let kv_remove id kv k =
  Smap.update k
    (fun l ->
      match List.filter (fun i -> i <> id) (Option.value ~default:[] l) with
      | [] -> None
      | l -> Some l)
    kv

let holders m k = Option.value ~default:[] (Smap.find_opt k m.key_values)

let key_values_of_instance schema inst =
  Instance.fold
    (fun e m ->
      List.fold_left
        (fun m k -> kv_add (Entry.id e) m k)
        m (entry_key_values schema e))
    inst Smap.empty

let create ?(extensions = true) ?pool ?index ?vindex ?memo ?memoize schema inst =
  (* Build the admission-scan index up front if the caller has none: it
     doubles as the live index the monitor maintains from here on. *)
  let index =
    match index with Some ix -> ix | None -> Index.create ?pool inst
  in
  match
    Legality.check ~extensions ?pool ~index ?vindex ?memo ?memoize schema inst
  with
  | [] ->
      Ok
        {
          schema;
          inst = Index.instance index;
          index;
          extensions;
          counts = counts_of_instance inst;
          key_values =
            (if extensions then key_values_of_instance schema inst else Smap.empty);
        }
  | violations -> Error violations

let of_index_trusted ?(extensions = true) schema index =
  (* No admission scan: the caller vouches for legality (a batch rebuild
     of state that was legal transaction by transaction).  The counting
     and key tables are recomputed from the instance — O(|D|), the same
     order as building [index] itself. *)
  let inst = Index.instance index in
  {
    schema;
    inst;
    index;
    extensions;
    counts = counts_of_instance inst;
    key_values =
      (if extensions then key_values_of_instance schema inst else Smap.empty);
  }

let instance m = m.inst
let schema m = m.schema
let index m = m.index

let class_count m c =
  Option.value ~default:0 (Oclass.Map.find_opt c m.counts)

let bump delta m counts =
  Instance.fold
    (fun e counts ->
      Oclass.Set.fold
        (fun c counts ->
          Oclass.Map.update c
            (fun n -> Some (delta + Option.value ~default:0 n))
            counts)
        (Entry.classes e) counts)
    m counts

let violation_of_key k entries =
  match String.index_opt k '\000' with
  | None -> None
  | Some i ->
      let attr = Attr.of_string (String.sub k 0 i) in
      let v = String.sub k (i + 1) (String.length k - i - 1) in
      Some (Violation.Duplicate_key { attr; value = Value.String v; entries })

let key_violations m delta =
  (* Duplicates against the existing instance and within Δ itself.  One
     violation per key value, listing {e every} holder (existing and new),
     so a rejection carries the same evidence as the full checker: since
     the monitored instance has no duplicates, the sharers of any
     conflicting key in D ∪ Δ are exactly its existing holders plus its
     Δ holders. *)
  let in_delta : (string, Entry.id list) Hashtbl.t = Hashtbl.create 16 in
  Instance.iter
    (fun e ->
      List.iter
        (fun k ->
          let prev =
            match Hashtbl.find_opt in_delta k with Some l -> l | None -> []
          in
          Hashtbl.replace in_delta k (Entry.id e :: prev))
        (entry_key_values m.schema e))
    delta;
  Hashtbl.fold
    (fun k delta_holders acc ->
      match holders m k @ delta_holders with
      | [] | [ _ ] -> acc
      | sharers -> (
          match violation_of_key k (List.sort Int.compare sharers) with
          | Some v -> v :: acc
          | None -> acc))
    in_delta []
  |> List.sort Violation.compare

let bump_keys delta_sign sub m kv =
  Instance.fold
    (fun e kv ->
      List.fold_left
        (fun kv k ->
          if delta_sign > 0 then kv_add (Entry.id e) kv k
          else kv_remove (Entry.id e) kv k)
        kv (entry_key_values m.schema e))
    sub kv

(* The two splice halves also hand back the rank-space edits the builder
   recorded ({!Index.Builder.splices}) — {!apply}/{!replay} accumulate
   them across steps so {!Directory} can migrate cached bitsets by
   word-level splicing instead of per-member rank translation. *)

let graft_indexed ~parent ~delta_index delta m =
  let b = Index.Builder.of_version m.index in
  Index.Builder.graft b ~parent ~delta_index delta;
  let splices = Index.Builder.splices b in
  let index = Index.Builder.seal b in
  ( {
      m with
      inst = Index.instance index;
      index;
      counts = bump 1 delta m.counts;
      key_values =
        (if m.extensions then bump_keys 1 delta m m.key_values
         else m.key_values);
    },
    splices )

let prune_indexed root sub m =
  let b = Index.Builder.of_version m.index in
  Index.Builder.prune b root;
  let splices = Index.Builder.splices b in
  let index = Index.Builder.seal b in
  ( {
      m with
      inst = Index.instance index;
      index;
      counts = bump (-1) sub m.counts;
      key_values =
        (if m.extensions then bump_keys (-1) sub m m.key_values
         else m.key_values);
    },
    splices )

let insert_subtree ~parent delta m =
  (* one Δ index per step: the incremental check evaluates its Figure-5
     Δ-queries on it, and the accepted subtree is then spliced into the
     live index from the very same encoding *)
  let delta_index = Index.create delta in
  match
    Incremental.check_insert ~extensions:m.extensions ~delta_index m.schema
      ~base:m.inst ~parent ~delta
  with
  | Error msg -> failwith msg
  | Ok viols -> (
      let viols =
        if m.extensions then viols @ key_violations m delta else viols
      in
      match viols with
      | _ :: _ -> Error viols
      | [] -> Ok (graft_indexed ~parent ~delta_index delta m))

let delete_subtree root m =
  match
    Incremental.check_delete ~class_count:(class_count m) m.schema ~base:m.inst
      ~root
  with
  | Error msg -> failwith msg
  | Ok (_ :: _ as viols) -> Error viols
  | Ok [] -> (
      match Instance.subtree m.inst root with
      | Error e -> failwith (Instance.error_to_string e)
      | Ok sub -> Ok (prune_indexed root sub m))

let modify_entry id f m =
  let old_entry =
    match Instance.find m.inst id with
    | Some e -> e
    | None -> failwith (Printf.sprintf "no such entry: %d" id)
  in
  let new_entry = f old_entry in
  if Entry.id new_entry <> id then
    invalid_arg "Monitor.modify_entry: the update must preserve the entry id";
  if not (Oclass.Set.equal (Entry.classes old_entry) (Entry.classes new_entry)) then
    invalid_arg
      "Monitor.modify_entry: attribute-level modification must preserve the class \
       set (use delete + insert to reclassify)";
  (* with the class set fixed, only per-entry content and keys can change *)
  let viols =
    Content_legality.check_entry m.schema new_entry
    @
    if m.extensions then begin
      let sv = Single_valued.check_entry m.schema new_entry in
      let old_keys = entry_key_values m.schema old_entry in
      let new_keys = entry_key_values m.schema new_entry in
      let added = List.filter (fun k -> not (List.mem k old_keys)) new_keys in
      let dups =
        List.filter_map
          (fun k ->
            match holders m k with
            | [] -> None
            | existing ->
                violation_of_key k (List.sort Int.compare (id :: existing)))
          added
      in
      sv @ dups
    end
    else []
  in
  match viols with
  | _ :: _ -> Error viols
  | [] ->
      let index = Index.replace_entry new_entry m.index in
      let key_values =
        if m.extensions then
          let kv =
            List.fold_left (kv_remove id) m.key_values
              (entry_key_values m.schema old_entry)
          in
          List.fold_left (kv_add id) kv (entry_key_values m.schema new_entry)
        else m.key_values
      in
      Ok { m with inst = Index.instance index; index; key_values }

type rejection =
  | Bad_ops of string
  | Illegal of { step : int; violations : Violation.t list }

let pp_rejection ppf = function
  | Bad_ops msg -> Format.fprintf ppf "invalid transaction: %s" msg
  | Illegal { step; violations } ->
      Format.fprintf ppf "@[<v>illegal at step %d:@ %a@]" step
        (Format.pp_print_list Violation.pp)
        violations

let apply ops m =
  match Transaction.decompose m.inst ops with
  | Error msg -> Error (Bad_ops msg)
  | Ok updates ->
      (* Per-step splices concatenate in application order: each step's
         splices are expressed against the version the previous step
         produced, which is exactly the order a sequential bitset
         migration replays them in. *)
      let rec go step m acc = function
        | [] -> Ok (m, List.concat (List.rev acc))
        | Transaction.Insert_subtree { parent; subtree } :: rest -> (
            match insert_subtree ~parent subtree m with
            | Ok (m, sps) -> go (step + 1) m (sps :: acc) rest
            | Error violations -> Error (Illegal { step; violations }))
        | Transaction.Delete_subtree { root } :: rest -> (
            match delete_subtree root m with
            | Ok (m, sps) -> go (step + 1) m (sps :: acc) rest
            | Error violations -> Error (Illegal { step; violations }))
      in
      go 1 m [] updates

(* --- trusted replay ------------------------------------------------------ *)

(* The splice halves of [insert_subtree]/[delete_subtree] without their
   Figure-5 Δ-checks: the index is patched and the counting/key tables
   are bumped exactly as on the checked path, so the resulting monitor is
   indistinguishable from one that re-checked the step. *)

let splice_insert ~parent delta m =
  let delta_index = Index.create delta in
  graft_indexed ~parent ~delta_index delta m

let splice_delete root m =
  match Instance.subtree m.inst root with
  | Error e -> failwith (Instance.error_to_string e)
  | Ok sub -> prune_indexed root sub m

let replay ops m =
  match Transaction.decompose m.inst ops with
  | Error msg -> Error (Bad_ops msg)
  | Ok updates -> (
      try
        let m, acc =
          List.fold_left
            (fun (m, acc) -> function
              | Transaction.Insert_subtree { parent; subtree } ->
                  let m, sps = splice_insert ~parent subtree m in
                  (m, sps :: acc)
              | Transaction.Delete_subtree { root } ->
                  let m, sps = splice_delete root m in
                  (m, sps :: acc))
            (m, []) updates
        in
        Ok (m, List.concat (List.rev acc))
      with Failure msg | Invalid_argument msg -> Error (Bad_ops msg))
