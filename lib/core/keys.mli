(** Directory-wide keys (Section 6.1, "Keys").

    A key attribute's values must be unique {e across the whole directory
    instance}, not merely within an object class — the paper observes that
    the loose notion of object class forces directory-wide uniqueness.
    (The distinguished name is always a key; that one holds by
    construction of the forest.) *)

open Bounds_model

(** One violation per (attribute, value) shared by ≥ 2 entries.  With a
    [pool], per-chunk tables are merged before reporting; the sorted
    output is identical to the sequential check. *)
val check : ?pool:Bounds_par.Pool.t -> Schema.t -> Instance.t -> Violation.t list
