open Bounds_model

(* Class schema (Definition 2.7):
   - only declared classes;
   - at least one core class;
   - the core classes must be exactly the upward closure of the deepest
     one (equivalent to: closed under superclasses and pairwise
     comparable, i.e. the single-inheritance elements  ci |- cj  and
     ci |-/ cj  all hold);
   - each auxiliary class allowed by some core class of the entry. *)
let check_classes (schema : Schema.t) e =
  let cs = schema.classes in
  let id = Entry.id e in
  let classes = Entry.classes e in
  let viols = ref [] in
  let add v = viols := v :: !viols in
  let cores, auxs, _unknown =
    Oclass.Set.fold
      (fun c (cores, auxs, unknown) ->
        if Class_schema.is_core cs c then (c :: cores, auxs, unknown)
        else if Class_schema.is_aux cs c then (cores, c :: auxs, unknown)
        else begin
          add (Violation.Unknown_class { entry = id; cls = c });
          (cores, auxs, c :: unknown)
        end)
      classes ([], [], [])
  in
  (match cores with
  | [] -> add (Violation.No_core_class { entry = id })
  | _ ->
      (* deepest core class; its closure must equal the core classes held *)
      let deepest =
        List.fold_left
          (fun best c ->
            if Class_schema.depth_of cs c > Class_schema.depth_of cs best then c
            else best)
          (List.hd cores) (List.tl cores)
      in
      let closure = Class_schema.up_closure cs deepest in
      List.iter
        (fun c ->
          if not (Oclass.Set.mem c closure) then
            add
              (Violation.Incomparable_classes { entry = id; c1 = deepest; c2 = c }))
        cores;
      Oclass.Set.iter
        (fun super ->
          if not (Oclass.Set.mem super classes) then
            add
              (Violation.Missing_superclass { entry = id; cls = deepest; super }))
        closure);
  List.iter
    (fun aux ->
      let allowed =
        List.exists
          (fun core -> Oclass.Set.mem aux (Class_schema.aux_of cs core))
          cores
      in
      if not allowed then add (Violation.Aux_not_allowed { entry = id; aux }))
    auxs;
  List.rev !viols

let check_attributes (schema : Schema.t) e =
  let id = Entry.id e in
  let classes = Entry.classes e in
  let viols = ref [] in
  let add v = viols := v :: !viols in
  (* every required attribute of every class of the entry is present *)
  Oclass.Set.iter
    (fun c ->
      Attr.Set.iter
        (fun attr ->
          if not (Attr.equal attr Attr.object_class) && Entry.values e attr = [] then
            add (Violation.Missing_required_attr { entry = id; cls = c; attr }))
        (Attribute_schema.required schema.attributes c))
    classes;
  (* every present attribute is allowed by some class of the entry *)
  let allowed_union =
    Oclass.Set.fold
      (fun c acc -> Attr.Set.union acc (Attribute_schema.allowed schema.attributes c))
      classes Attr.Set.empty
  in
  Attr.Set.iter
    (fun attr ->
      if
        (not (Attr.equal attr Attr.object_class))
        && not (Attr.Set.mem attr allowed_union)
      then add (Violation.Attr_not_allowed { entry = id; attr }))
    (Entry.attributes e);
  List.rev !viols

let check_typing (schema : Schema.t) e =
  let id = Entry.id e in
  List.filter_map
    (fun (attr, v) ->
      let ty = Typing.find schema.typing attr in
      if Value.has_type ty v then None
      else Some (Violation.Type_violation { entry = id; attr; expected = ty }))
    (Entry.stored_pairs e)

let check_entry schema e =
  check_typing schema e @ check_classes schema e @ check_attributes schema e

(* Content legality is a per-entry test (Section 3.1), so the instance is
   embarrassingly parallel: chunk the entries (in traversal order) across
   the pool and concatenate the per-entry lists in that same order — the
   result is identical to the sequential fold. *)
let check ?pool schema inst =
  let entries =
    Array.of_list (List.rev (Instance.fold (fun e acc -> e :: acc) inst []))
  in
  Bounds_par.Pool.map_array ?pool (check_entry schema) entries
  |> Array.to_list |> List.concat

let entry_is_legal schema e = check_entry schema e = []
let is_legal schema inst = Instance.fold (fun e ok -> ok && entry_is_legal schema e) inst true
