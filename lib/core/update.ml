(* Re-export: the update-operation vocabulary moved down into
   [Bounds_model] so the query layer ([Index.apply], [Vindex.apply],
   [Plan.memo_apply]) can speak it without depending on this library.
   Existing [Bounds_core.Update] callers keep compiling through this
   alias. *)
include Bounds_model.Update
