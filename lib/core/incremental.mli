(** Incremental legality testing (Section 4.2, Figure 5, Theorem 4.2).

    Both checks assume the base instance is legal and decide whether the
    updated instance ([base + Δ] or [base − Δ]) is still legal, touching
    as little of the base as the relationship kind permits:

    {b Insertion} of a subtree Δ under a parent [p] — every relationship
    kind is incrementally testable (Figure 5, top).  Work is O(|S|·|Δ|)
    plus one walk of the ancestor path above [p] (for the ancestor axis
    and forbidden-descendant cross pairs).

    {b Deletion} of a subtree — required parent/ancestor relationships and
    all forbidden relationships need {e no} check at all; required
    child/descendant relationships are not incrementally testable in the
    paper's query sense and are re-verified here on the deletion frontier
    (the parent, resp. the ancestors, of the deleted root — the only
    entries whose downward sets changed).  Required classes are
    incrementally testable when a per-class entry count is supplied
    (exactly the paper's closing remark of Section 4); without one the
    check scans the remainder.

    The returned violation list is empty iff the updated instance is
    legal; equivalence with the full checker is property-tested. *)

open Bounds_model

(** The Y/N columns of Figure 5. *)
val testable_on_insert_req : Structure_schema.rel -> bool

val testable_on_delete_req : Structure_schema.rel -> bool
val testable_on_insert_forb : Structure_schema.forb -> bool
val testable_on_delete_forb : Structure_schema.forb -> bool

(** The Δ-query of Figure 5 for a required relationship and an insertion:
    the paper's expression, with each sub-expression tagged by the
    instance it is evaluated against. *)
type scope = On_delta | On_base | On_updated | On_empty

val pp_scope : Format.formatter -> scope -> unit

(** Figure-5 row: (sub-query scopes, readable rendering).  Exposed so the
    table itself is a testable artifact; the checker below implements the
    same computations directly. *)
val delta_query_insert :
  Structure_schema.required -> (string * scope) list

val delta_query_delete_req : Structure_schema.required -> (string * scope) list

(** [check_insert schema ~base ~parent ~delta] — Δ is a non-empty
    single-rooted instance to be grafted under [parent] ([None] = a new
    root).  [base] is assumed legal.  Extensions (single-valued, keys) are
    covered only when [extensions] is [true] (default [false]; the keys
    check needs a scan of [base], see {!Monitor} for the stateful O(Δ)
    version).  [delta_index], when given, must be an evaluation index of
    [delta]; it is used instead of building one, so a caller checking
    and then splicing the same Δ (see {!Monitor.insert_subtree}) indexes
    it exactly once. *)
val check_insert :
  ?extensions:bool ->
  ?delta_index:Bounds_query.Index.t ->
  Schema.t ->
  base:Instance.t ->
  parent:Entry.id option ->
  delta:Instance.t ->
  (Violation.t list, string) result

(** [check_delete schema ~base ~root] — [base] legal; decides legality of
    [base − subtree(root)].  [class_count], when given, must return the
    number of entries of a class in [base] (see {!Monitor}); it makes the
    required-class check O(|Δ|). *)
val check_delete :
  ?class_count:(Oclass.t -> int) ->
  Schema.t ->
  base:Instance.t ->
  root:Entry.id ->
  (Violation.t list, string) result
