(** Full legality testing (Definition 2.7, Theorem 3.1).

    Combines the per-entry content checks of Section 3.1 with the
    query-reduction structure checks of Section 3.2.  Total cost is
    O(|D| · (max|class(e)| + max|Aux(c)|·depth(H) + max|val(e)| +
    max Σ|a(c)| + |S|)) — linear in the instance for a fixed schema,
    which benchmark [legality_scaling] validates against the quadratic
    {!Naive_legality} baseline. *)

open Bounds_model
open Bounds_query

(** All violations: typing, content, structure — and, when [extensions]
    is [true] (default), the Section 6.1 single-valued and key checks.

    With a [pool] every O(|D|) stage runs data-parallel over the workers
    — per-entry content/extension checks chunked over the entries, the
    Figure-4 obligations fanned out one per task, the evaluation indexes
    built chunk-wise — while keeping the linear bound and producing a
    violation list {e bit-identical} to the sequential engine (stable
    obligation order, chunk-ordered merges).

    [memoize] (default [true]) routes the structure obligations through
    the shared-subquery memo of {!Structure_legality.check}; [memo]
    supplies a session's migrated cache to reuse instead of building a
    fresh one. *)
val check :
  ?extensions:bool ->
  ?pool:Bounds_par.Pool.t ->
  ?index:Index.t ->
  ?vindex:Vindex.t ->
  ?memo:Plan.memo ->
  ?memoize:bool ->
  Schema.t ->
  Instance.t ->
  Violation.t list

val is_legal :
  ?extensions:bool ->
  ?pool:Bounds_par.Pool.t ->
  ?index:Index.t ->
  ?vindex:Vindex.t ->
  ?memo:Plan.memo ->
  ?memoize:bool ->
  Schema.t ->
  Instance.t ->
  bool
