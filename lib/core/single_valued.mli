(** Single-valued attributes (Section 6.1, "Numeric Restrictions").

    LDAP lets a schema declare that particular attributes may carry at
    most one value per entry.  The paper notes this is orthogonal to
    bounding-schemas; it composes as an extra per-entry check. *)

open Bounds_model

val check_entry : Schema.t -> Entry.t -> Violation.t list

(** With a [pool], chunked per-entry; output identical to sequential. *)
val check : ?pool:Bounds_par.Pool.t -> Schema.t -> Instance.t -> Violation.t list
