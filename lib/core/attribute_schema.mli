(** Attribute schema (Definition 2.2).

    For each object class, the set of {e required} attributes (an entry of
    the class must have at least one value for each) and the set of
    {e allowed} attributes (an entry may only carry attributes allowed by
    at least one of its classes).  The invariant [required(c) ⊆ allowed(c)]
    is maintained by construction: [add_class] allows everything it
    requires. *)

open Bounds_model

type t

val empty : t

(** [add_class c ~required ~allowed t] declares class [c].  The class's
    allowed set becomes [required ∪ allowed].  Declaring the same class
    twice is an error.  An empty declaration (both lists empty) is a
    no-op: it means exactly what no declaration means, and storing it
    would break the print/parse round-trip of the spec language, which
    has no syntax for it. *)
val add_class :
  Oclass.t -> ?required:Attr.t list -> ?allowed:Attr.t list -> t -> (t, string) result

val add_class_exn :
  Oclass.t -> ?required:Attr.t list -> ?allowed:Attr.t list -> t -> t

(** Classes with a declaration. *)
val classes : t -> Oclass.Set.t

val mem_class : t -> Oclass.t -> bool

(** Every attribute mentioned anywhere in the schema. *)
val attributes : t -> Attr.Set.t

(** [required t c] / [allowed t c] are empty for undeclared classes. *)
val required : t -> Oclass.t -> Attr.Set.t

val allowed : t -> Oclass.t -> Attr.Set.t

(** Σ_c |allowed(c)| — the size term of Theorem 3.1. *)
val total_allowed : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
