(** Alias of {!Bounds_model.Update}, kept so existing
    [Bounds_core.Update] callers are unaffected by the module's move
    into the model layer (where the incremental index maintenance of
    {!Bounds_query.Index.apply} can name it). *)

include module type of struct
  include Bounds_model.Update
end
