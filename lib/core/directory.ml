open Bounds_model
module Index = Bounds_query.Index
module Vindex = Bounds_query.Vindex
module Plan = Bounds_query.Plan
module Search = Bounds_query.Search
module Pool = Bounds_par.Pool

(* --- read-only snapshots ---------------------------------------------- *)

module Snapshot = struct
  type t = { index : Index.t; vindex : Vindex.t; memo : Plan.memo }

  let of_index ?pool index =
    let vindex = Vindex.create ?pool index in
    { index; vindex; memo = Plan.memo_create vindex }

  let of_instance ?pool inst = of_index ?pool (Index.create ?pool inst)
  let index s = s.index
  let vindex s = s.vindex
  let memo s = s.memo
  let instance s = Index.instance s.index
  let query ?pool s q = Plan.memo_eval ?pool s.memo q
  let query_ids ?pool s q = Index.ids_of s.index (query ?pool s q)

  (* Read-only twins: never write the snapshot's memo, so any number of
     concurrent readers (threads or domains) may evaluate over one
     published snapshot — the lock-free read path of the network
     server's snapshot-isolation discipline. *)
  let query_ro ?pool s q = Plan.memo_eval_ro ?pool s.memo q
  let query_ids_ro ?pool s q = Index.ids_of s.index (query_ro ?pool s q)

  let explain ?pool s q =
    let plan = Plan.plan s.vindex q in
    let result = Plan.exec ?pool plan in
    (plan, result)

  let search s ~base scope filter =
    Search.search ~vindex:s.vindex s.index ~base scope filter

  let validate ?(extensions = true) ?pool ?memoize schema s =
    Legality.check ~extensions ?pool ~index:s.index ~vindex:s.vindex
      ~memo:s.memo ?memoize schema (instance s)

  (* The raw structures, for oracles/benchmarks that differentially test
     them — the only sanctioned way past the snapshot surface. *)
  module Private = struct
    let index = index
    let vindex = vindex
    let memo = memo
  end
end

(* --- live sessions ----------------------------------------------------- *)

(* Query/update tallies are shared by every version of a session (the
   record travels through [{ t with ... }] untouched), so [stats] reports
   session totals no matter which version it is asked on. *)
type counters = {
  mutable queries : int;
  mutable applied : int;
  mutable rejected : int;
}

type t = {
  schema : Schema.t;
  monitor : Monitor.t;
  vindex : Vindex.t;
  memo : Plan.memo;
  extensions : bool;
  memoize : bool;
  pool : Pool.t option;
  owns_pool : bool;
  counters : counters;
  store : (Update.op list -> t -> unit) option;
}

type commit_hook = Update.op list -> t -> unit

let open_ ?(extensions = true) ?jobs ?pool ?(memoize = true) ?store schema inst =
  let pool, owns_pool =
    match (pool, jobs) with
    | (Some _ as p), _ -> (p, false)
    | None, (None | Some 1) -> (None, false)
    | None, Some j ->
        let domains = if j <= 0 then None else Some j in
        (Some (Pool.create ?domains ()), true)
  in
  let index = Index.create ?pool inst in
  let vindex = Vindex.create ?pool index in
  let memo = Plan.memo_create vindex in
  (* The admission scan prewarms [memo] with the Figure-4 obligation
     queries, so the session's first [validate] is all cache hits. *)
  match
    Monitor.create ~extensions ?pool ~index ~vindex
      ?memo:(if memoize then Some memo else None)
      ~memoize schema inst
  with
  | Error _ as e ->
      if owns_pool then Option.iter Pool.shutdown pool;
      e
  | Ok monitor ->
      Ok
        {
          schema;
          monitor;
          vindex;
          memo;
          extensions;
          memoize;
          pool;
          owns_pool;
          counters = { queries = 0; applied = 0; rejected = 0 };
          store;
        }

let schema t = t.schema
let monitor t = t.monitor
let instance t = Monitor.instance t.monitor
let index t = Monitor.index t.monitor
let pool t = t.pool
let size t = Instance.size (instance t)

let query t q =
  t.counters.queries <- t.counters.queries + 1;
  Plan.memo_eval ?pool:t.pool t.memo q

let query_ids t q = Index.ids_of (index t) (query t q)

let explain t q =
  t.counters.queries <- t.counters.queries + 1;
  let plan = Plan.plan t.vindex q in
  let result = Plan.exec ?pool:t.pool plan in
  (plan, result)

let search t ~base scope filter =
  t.counters.queries <- t.counters.queries + 1;
  Search.search ~vindex:t.vindex (index t) ~base scope filter

let validate t =
  Legality.check ~extensions:t.extensions ?pool:t.pool ~index:(index t)
    ~vindex:t.vindex
    ?memo:(if t.memoize then Some t.memo else None)
    ~memoize:t.memoize t.schema (instance t)

let apply t ops =
  let entries_before = size t in
  match Monitor.apply ops t.monitor with
  | Error reason ->
      t.counters.rejected <- t.counters.rejected + 1;
      (t, Admission.Rejected { reason; ops })
  | Ok (monitor, splices) ->
      (* the monitor already spliced the accepted Δs into its live index;
         carry the value tables across the same ops and the memo across
         the very rank-space edits the index performed *)
      let index = Monitor.index monitor in
      let vindex = Vindex.apply ~index ops t.vindex in
      let memo =
        if t.memoize then Plan.memo_apply ~vindex ~splices ops t.memo
        else Plan.memo_create vindex
      in
      let t' = { t with monitor; vindex; memo } in
      (* write-ahead durability: the hook must land the transaction
         before it is acknowledged — if it raises, [t] is still the
         session's current version and nothing was counted *)
      Option.iter (fun hook -> hook ops t') t.store;
      t.counters.applied <- t.counters.applied + 1;
      ( t',
        Admission.Accepted
          { lsn = None; ops; entries_before; entries_after = size t' } )

let replay t ops =
  match Monitor.replay ops t.monitor with
  | Error _ as e -> e
  | Ok (monitor, splices) ->
      (* same carry as [apply], minus admission and minus the durability
         hook: replay is for transactions that are already on disk *)
      let index = Monitor.index monitor in
      let vindex = Vindex.apply ~index ops t.vindex in
      let memo =
        if t.memoize then Plan.memo_apply ~vindex ~splices ops t.memo
        else Plan.memo_create vindex
      in
      t.counters.applied <- t.counters.applied + 1;
      Ok { t with monitor; vindex; memo }

(* --- batched trusted ingest --------------------------------------------- *)

module Bulk = struct
  type session = t
  type mode = [ `Auto | `Batch | `Incremental ]

  type t = {
    mutable live : session;  (* incrementally-patched version *)
    mutable inst : Instance.t;  (* copy-on-write instance; batch regime only *)
    mutable batched : bool;
    mutable txns : int;
    mutable pending : int;  (* ops folded in since [start] *)
    base_n : int;  (* live instance size at [start] *)
    mode : mode;
  }

  (* Cost crossover.  One incremental splice pays a copy-on-write pass
     over every live structure — O(n) blits for the index, a hash-table
     copy for the value index — so k spliced transactions cost ~k·n.  A
     batch rebuild pays one full O(n + Δ) construction with heavier
     per-entry work (DFS numbering, hashing, admission-table recompute).
     Incremental therefore wins only while the transaction count stays
     under the rebuild's constant-factor ratio and Δ stays small next to
     the live instance. *)
  let rebuild_ratio = 8

  let start ?(mode : mode = `Auto) (t : session) =
    let b =
      {
        live = t;
        inst = instance t;
        batched = false;
        txns = 0;
        pending = 0;
        base_n = size t;
        mode;
      }
    in
    if mode = `Batch then b.batched <- true;
    b

  let add b ops =
    let pending = b.pending + List.length ops in
    if
      (not b.batched)
      && (match b.mode with
         | `Incremental -> false
         | `Batch -> true
         | `Auto ->
             b.txns + 1 >= rebuild_ratio || 4 * pending >= b.base_n + 4)
    then begin
      b.batched <- true;
      b.inst <- instance b.live
    end;
    if b.batched then
      match Update.apply b.inst ops with
      | Error msg -> Error (Monitor.Bad_ops msg)
      | Ok inst ->
          b.inst <- inst;
          b.live.counters.applied <- b.live.counters.applied + 1;
          b.txns <- b.txns + 1;
          b.pending <- pending;
          Ok ()
    else
      match replay b.live ops with
      | Error _ as e -> e
      | Ok live ->
          b.live <- live;
          b.txns <- b.txns + 1;
          b.pending <- pending;
          Ok ()

  let txns b = b.txns
  let batched b = b.batched

  let finish b =
    if not b.batched then b.live
    else
      (* one bulk (re)build of every deferred structure, against the
         final instance — O(n + Δ) total instead of O(txns · n) *)
      let t = b.live in
      let index = Index.create ?pool:t.pool b.inst in
      let vindex = Vindex.create ?pool:t.pool index in
      let memo = Plan.memo_create vindex in
      let monitor =
        Monitor.of_index_trusted ~extensions:t.extensions t.schema index
      in
      { t with monitor; vindex; memo }
end

let snapshot t =
  { Snapshot.index = index t; vindex = t.vindex; memo = t.memo }

let close t = if t.owns_pool then Option.iter Pool.shutdown t.pool

(* --- stats -------------------------------------------------------------- *)

type stats = {
  entries : int;
  queries : int;
  applied : int;
  rejected : int;
  memo_hits : int;
  memo_misses : int;
  memo_entries : int;
  memo_migrated : int;
  memo_dropped : int;
  intern : Intern.stat list;
}

let stats t =
  let memo_hits, memo_misses, memo_entries = Plan.memo_stats t.memo in
  let memo_migrated, memo_dropped = Plan.memo_migration_stats t.memo in
  {
    entries = size t;
    queries = t.counters.queries;
    applied = t.counters.applied;
    rejected = t.counters.rejected;
    memo_hits;
    memo_misses;
    memo_entries;
    memo_migrated;
    memo_dropped;
    intern = Intern.stats ();
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>entries: %d@ queries: %d@ updates: %d applied, %d rejected@ memo: \
     %d entries (%d hits, %d misses; migration carried %d, dropped %d)@ \
     intern:@   %a@]"
    s.entries s.queries s.applied s.rejected s.memo_entries s.memo_hits
    s.memo_misses s.memo_migrated s.memo_dropped Intern.pp_stats s.intern
