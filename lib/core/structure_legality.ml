open Bounds_model
open Bounds_query

(* All offending children / descendants of [src], for the witness pairs in
   Forbidden_rel reports (one report per offending pair, matching the
   naive pairwise checker). *)
let find_targets inst f cj src =
  let has_class id = Entry.has_class (Instance.entry inst id) cj in
  match f with
  | Structure_schema.F_child -> List.filter has_class (Instance.children inst src)
  | Structure_schema.F_descendant ->
      List.filter has_class (Instance.descendants inst src)

(* The (obligation, query, expectation) triples of [Translate.all] are
   independent of one another, so with a pool they are evaluated
   obligation-per-task across the workers ([Pool.map_array]); the
   per-obligation violation lists are concatenated in the stable
   obligation order of [Translate.all], so the output is bit-identical to
   the sequential engine.  Each task's own query evaluation runs
   sequentially — the obligation is the unit of parallelism here (a
   nested pool submission would be executed inline anyway). *)
let check ?pool ?index ?vindex ?memo ?(memoize = true) (schema : Schema.t) inst =
  let ix = match index with Some ix -> ix | None -> Index.create ?pool inst in
  let obligations = Array.of_list (Translate.all schema.structure) in
  let eval_q =
    if memoize || memo <> None then begin
      (* Hash-consed memo over this (index, vindex) snapshot: the
         obligation queries share their class selections and χ frames
         heavily (σ−(s_i, χ(ax, s_i, s_j)) alone names s_i twice), so the
         shared subqueries are evaluated-and-cached once, sequentially,
         before the obligation fan-out reads the cache from the workers
         ([memo_eval_ro] never writes — concurrent reads of a frozen
         table are safe).  A caller-supplied [memo] (e.g. a session's
         cache migrated across updates by [Plan.memo_apply]) is used as
         is: prewarm only tops up what migration dropped. *)
      let memo =
        match memo with
        | Some m -> m
        | None ->
            let vx =
              match vindex with Some vx -> vx | None -> Vindex.create ?pool ix
            in
            Plan.memo_create vx
      in
      Plan.prewarm ?pool memo
        (Array.to_list (Array.map (fun (_, q, _) -> q) obligations));
      fun q -> Plan.memo_eval_ro memo q
    end
    else fun q -> Eval.eval ?vindex ix q
  in
  let viols_of (oblig, q, expect) =
    let result = eval_q q in
    let viols = ref [] in
    let add v = viols := v :: !viols in
    (match (expect, oblig) with
    | Translate.Must_be_nonempty, Translate.Oblig_class c ->
        if Bitset.is_empty result then
          add (Violation.Missing_required_class { cls = c })
    | Translate.Must_be_empty, Translate.Oblig_required rel ->
        List.iter
          (fun id -> add (Violation.Unsatisfied_rel { entry = id; rel }))
          (Index.ids_of ix result)
    | Translate.Must_be_empty, Translate.Oblig_forbidden ((_, f, cj) as rel) ->
        List.iter
          (fun src ->
            match find_targets inst f cj src with
            | [] -> assert false (* query said so *)
            | targets ->
                List.iter
                  (fun target ->
                    add (Violation.Forbidden_rel { source = src; target; rel }))
                  targets)
          (Index.ids_of ix result)
    | Translate.Must_be_nonempty, (Translate.Oblig_required _ | Translate.Oblig_forbidden _)
    | Translate.Must_be_empty, Translate.Oblig_class _ ->
        assert false (* Translate.all pairs expectations correctly *));
    List.rev !viols
  in
  Bounds_par.Pool.map_array ?pool viols_of obligations
  |> Array.to_list |> List.concat

let is_legal ?pool ?index ?vindex ?memo ?memoize schema inst =
  check ?pool ?index ?vindex ?memo ?memoize schema inst = []
