open Bounds_model

let check_entry (schema : Schema.t) e =
  Attr.Set.fold
    (fun attr acc ->
      let count = List.length (Entry.values e attr) in
      if count > 1 then
        Violation.Multiple_values { entry = Entry.id e; attr; count } :: acc
      else acc)
    schema.single_valued []
  |> List.rev

(* Per-entry test: chunked across the pool, merged in traversal order —
   output identical to the sequential fold. *)
let check ?pool schema inst =
  let entries =
    Array.of_list (List.rev (Instance.fold (fun e acc -> e :: acc) inst []))
  in
  Bounds_par.Pool.map_array ?pool (check_entry schema) entries
  |> Array.to_list |> List.concat
