open Bounds_model

type subtree_update =
  | Insert_subtree of { parent : Entry.id option; subtree : Instance.t }
  | Delete_subtree of { root : Entry.id }

let pp_subtree_update ppf = function
  | Insert_subtree { parent; subtree } ->
      Format.fprintf ppf "insert subtree of %d entries %s" (Instance.size subtree)
        (match parent with
        | None -> "at the top level"
        | Some p -> Printf.sprintf "under entry %d" p)
  | Delete_subtree { root } -> Format.fprintf ppf "delete subtree rooted at %d" root

let ( let* ) = Result.bind

(* Decomposition works entirely from the ids the transaction names —
   O(|Δ| log |D|), never a scan of the instance.  The op algebra makes
   that sound: [Insert] grafts a fresh entry and [Delete] removes a
   whole subtree, so an entry neither named by an op nor inside a
   deleted subtree is bit-identical (content and parent) in [updated].
   The only subtlety is a delete-then-reinsert of the same id: its old
   children are deleted without being named, so the children (in
   [inst]) of every op-named survivor join the delete candidates. *)
let decompose inst ops =
  let* updated = Update.apply inst ops in
  let op_ids =
    List.fold_left
      (fun acc -> function
        | Update.Insert { entry; _ } -> Entry.id entry :: acc
        | Update.Delete id -> id :: acc)
      [] ops
    |> List.sort_uniq Int.compare
  in
  (* surviving entries must be untouched; only op-named ids can survive
     changed (a delete-then-reinsert), so only they need the check *)
  let* () =
    List.fold_left
      (fun acc id ->
        let* () = acc in
        match (Instance.find inst id, Instance.find updated id) with
        | None, _ | _, None -> Ok ()
        | Some e, Some e' ->
            if not (Entry.equal e e') then
              Error (Printf.sprintf "transaction re-creates surviving entry %d" id)
            else if Instance.parent inst id <> Instance.parent updated id then
              Error (Printf.sprintf "transaction moves surviving entry %d" id)
            else Ok ())
      (Ok ()) op_ids
  in
  (* maximal inserted subtrees: inserted entries whose parent in the
     updated instance is not itself inserted *)
  let inserted id = (not (Instance.mem inst id)) && Instance.mem updated id in
  let deleted id = Instance.mem inst id && not (Instance.mem updated id) in
  let inserts =
    List.filter_map
      (fun id ->
        if not (inserted id) then None
        else
          let parent = Instance.parent updated id in
          match parent with
          | Some p when inserted p -> None
          | _ -> (
              match Instance.subtree updated id with
              | Ok subtree -> Some (Insert_subtree { parent; subtree })
              | Error e -> failwith (Instance.error_to_string e)))
      op_ids
  in
  (* a maximal deleted root is an op-named delete, or a child (in
     [inst]) of an op-named id that was deleted and reinserted *)
  let delete_candidates =
    List.concat_map
      (fun id ->
        if Instance.mem inst id && Instance.mem updated id then
          id :: Instance.children inst id
        else [ id ])
      op_ids
    |> List.sort_uniq Int.compare
  in
  let deletes =
    List.filter_map
      (fun id ->
        if not (deleted id) then None
        else
          match Instance.parent inst id with
          | Some p when deleted p -> None
          | _ -> Some (Delete_subtree { root = id }))
      delete_candidates
  in
  Ok (inserts @ deletes)

let apply_subtree inst = function
  | Insert_subtree { parent; subtree } ->
      Result.map_error Instance.error_to_string (Instance.graft ~parent subtree inst)
  | Delete_subtree { root } ->
      Result.map_error Instance.error_to_string (Instance.remove_subtree root inst)

type rejection =
  | Bad_ops of string
  | Illegal of { step : int; update : subtree_update; violations : Violation.t list }

let pp_rejection ppf = function
  | Bad_ops m -> Format.fprintf ppf "invalid transaction: %s" m
  | Illegal { step; update; violations } ->
      Format.fprintf ppf "@[<v>illegal at step %d (%a):@ %a@]" step
        pp_subtree_update update
        (Format.pp_print_list Violation.pp)
        violations

let check schema inst ops =
  match decompose inst ops with
  | Error m -> Error (Bad_ops m)
  | Ok updates ->
      let rec go step inst = function
        | [] -> Ok inst
        | u :: rest -> (
            match apply_subtree inst u with
            | Error m -> Error (Bad_ops m)
            | Ok inst' -> (
                match Legality.check schema inst' with
                | [] -> go (step + 1) inst' rest
                | violations -> Error (Illegal { step; update = u; violations })))
      in
      go 1 inst updates
