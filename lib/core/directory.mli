(** Live directory sessions: one facade over the schema monitor, the
    evaluation index, the value/range/trigram tables, and the query memo.

    A {!t} is a persistent handle on a directory known to be legal.  It
    owns every auxiliary structure the library can maintain for one
    instance version and keeps all of them {e incrementally} consistent
    across updates:

    - the {!Bounds_query.Index} preorder encoding steps to a chunked
      copy-on-write version ({!Bounds_query.Index.Builder}) — each
      accepted Δ is indexed once and spliced, copying only the chunks it
      touches while everything else is shared structurally with the
      previous version;
    - the {!Bounds_query.Vindex} value tables are patched per touched
      key on persistent maps, with range/trigram tables for touched
      attributes evicted and lazily rebuilt;
    - the {!Bounds_query.Plan} memo is migrated ({!Bounds_query.Plan.memo_apply}):
      pointwise cache entries survive the update — their bitsets are
      spliced along the same rank-space edits the index performed — and
      only χ-dependent ones are re-evaluated on demand.

    Like the underlying {!Monitor}, a session value is persistent: a
    rejected {!apply} leaves the previous value usable, and superseded
    versions remain valid {!Snapshot}s of their instance version. *)

open Bounds_model

(** {1 Read-only snapshots}

    A snapshot bundles the (index, vindex, memo) triple of {e one}
    instance version and is the {e only} read surface the library
    exposes: every query, search, explain and validation goes through a
    snapshot (or through the session conveniences below, which evaluate
    on the current version's snapshot state).  The underlying structures
    are deliberately not exported — versions share chunks and postings
    structurally, so handing out a raw index invites callers to assume a
    flat per-version copy that no longer exists.  Differential tests and
    benchmarks that must compare the raw structures go through
    {!Snapshot.Private}.  A snapshot performs no legality checking of
    its own. *)

module Snapshot : sig
  type t

  (** Build every auxiliary structure for [inst] (index construction is
      parallelized by [pool]). *)
  val of_instance : ?pool:Bounds_par.Pool.t -> Instance.t -> t

  (** Wrap an existing evaluation index. *)
  val of_index : ?pool:Bounds_par.Pool.t -> Bounds_query.Index.t -> t

  val instance : t -> Instance.t

  (** Evaluate through the snapshot's memo (caching — sequential use
      only; [pool] parallelizes χ sweeps inside one evaluation). *)
  val query :
    ?pool:Bounds_par.Pool.t -> t -> Bounds_query.Query.t -> Bounds_query.Bitset.t

  val query_ids :
    ?pool:Bounds_par.Pool.t -> t -> Bounds_query.Query.t -> Entry.id list

  (** Read-only evaluation: hits the snapshot's memo but never writes
      it, so any number of concurrent readers may evaluate over one
      snapshot (cold subqueries are recomputed rather than cached) —
      the lock-free read path of {!Bounds_net.Server}'s snapshot
      isolation. *)
  val query_ro :
    ?pool:Bounds_par.Pool.t -> t -> Bounds_query.Query.t -> Bounds_query.Bitset.t

  val query_ids_ro :
    ?pool:Bounds_par.Pool.t -> t -> Bounds_query.Query.t -> Entry.id list

  (** Evaluate through the cost-based planner, returning the executed
      plan (with actual cardinalities recorded) alongside the result —
      the [--explain] path. *)
  val explain :
    ?pool:Bounds_par.Pool.t ->
    t ->
    Bounds_query.Query.t ->
    Bounds_query.Plan.t * Bounds_query.Bitset.t

  (** LDAP-style scoped search over the snapshot. *)
  val search :
    t ->
    base:Entry.id option ->
    Bounds_query.Search.scope ->
    Bounds_query.Filter.t ->
    Entry.id list

  (** Full legality check of the snapshot's instance, reusing its index,
      vindex and memo. *)
  val validate :
    ?extensions:bool ->
    ?pool:Bounds_par.Pool.t ->
    ?memoize:bool ->
    Schema.t ->
    t ->
    Violation.t list

  (** Escape hatch to the raw per-version structures, for differential
      oracles and benchmarks that compare them against independently
      rebuilt twins.  Application code has no business here: the
      structures are shared across versions (chunks, postings, cached
      bitsets) and must be treated as immutable. *)
  module Private : sig
    val index : t -> Bounds_query.Index.t
    val vindex : t -> Bounds_query.Vindex.t
    val memo : t -> Bounds_query.Plan.memo
  end
end

(** {1 Live sessions} *)

type t

(** Durability hook: called by {!apply} with the accepted transaction
    and the {e new} session version, after incremental legality has
    admitted the ops but before the version is returned (and before it
    is counted as applied).  This is where a write-ahead log makes the
    transaction durable before it is acknowledged: an exception from
    the hook aborts the apply, and the previous version stays usable —
    an un-logged transaction is never observed as accepted.  See
    {!Bounds_store.Store}. *)
type commit_hook = Update.op list -> t -> unit

(** [open_ schema inst] runs the full admission scan (via
    {!Monitor.create}) and builds the session's index, value tables and
    memo; the scan prewarms the memo with the Figure-4 obligation
    queries.  [Error] carries the violations of an illegal [inst].

    [extensions] (default [true]) also enforces single-valued attributes
    and keys.  [memoize] (default [true]) keeps the query memo across
    updates; [false] rebuilds it per version (the benchmark baseline).

    Parallelism: pass an existing [pool], or let the session own one via
    [jobs] — [1] (and the default) is sequential, [0] uses the machine's
    recommended domain count, [n > 1] uses [n] domains.  A session-owned
    pool is shut down by {!close}.

    [store] installs a durability hook, inherited by every version the
    session produces. *)
val open_ :
  ?extensions:bool ->
  ?jobs:int ->
  ?pool:Bounds_par.Pool.t ->
  ?memoize:bool ->
  ?store:commit_hook ->
  Schema.t ->
  Instance.t ->
  (t, Violation.t list) result

val schema : t -> Schema.t
val monitor : t -> Monitor.t
val instance : t -> Instance.t
val pool : t -> Bounds_par.Pool.t option

(** Number of entries in the current version. *)
val size : t -> int

(** Evaluate a hierarchical selection query through the session memo.
    Caching — call sequentially (the underlying χ sweeps may still use
    the session pool). *)
val query : t -> Bounds_query.Query.t -> Bounds_query.Bitset.t

val query_ids : t -> Bounds_query.Query.t -> Entry.id list

(** Like {!Snapshot.explain}, against the current version. *)
val explain : t -> Bounds_query.Query.t -> Bounds_query.Plan.t * Bounds_query.Bitset.t

(** LDAP-style scoped search over the current version. *)
val search :
  t ->
  base:Entry.id option ->
  Bounds_query.Search.scope ->
  Bounds_query.Filter.t ->
  Entry.id list

(** Re-run the full legality check on the current version, reusing the
    session's index, value tables and migrated memo.  Always [[]] after
    a successful {!open_}/{!apply} — exposed for auditing and testing. *)
val validate : t -> Violation.t list

(** [apply t ops] — the whole transaction atomically under incremental
    legality ({!Monitor.apply}); on acceptance the index, value tables
    and memo are all carried forward incrementally, and the returned
    session is the new version.  On rejection the returned session is
    [t] itself, unchanged and still usable.  Either way the
    {!Admission.result} carries the verdict — the one result shape every
    write surface ({!Bounds_store.Store.apply},
    {!Bounds_store.Store.batch}, the network writer) reports. *)
val apply : t -> Update.op list -> t * Admission.result

(** [replay t ops] — trusted fast path for transactions that {e already}
    passed admission when they were first acknowledged (WAL records
    being recovered, pre-validated dumps): the instance, index, value
    tables and memo are all maintained exactly as by {!apply}, but no
    legality check runs and the durability hook is {e not} called (the
    transaction is already on disk).  Structurally impossible ops —
    damage, not illegality — still reject as [Bad_ops].  Feeding
    never-admitted transactions through [replay] voids the session's
    legality invariant; see the safety argument in DESIGN.md. *)
val replay : t -> Update.op list -> (t, Monitor.rejection) result

(** Batched trusted ingest: fold many already-admitted transactions into
    a session while deferring (or skipping) per-transaction index
    patching.

    The builder starts in the {e incremental} regime, splicing each
    transaction through {!replay}.  Once the folded Δ grows past a cost
    crossover — transaction count above the rebuild's constant-factor
    ratio, or Δ size no longer small next to the live instance — it
    flips to the {e batch} regime: ops land on a copy-on-write instance
    only, and {!Bulk.finish} bulk-(re)builds the index, value tables,
    memo and admission tables once against the final instance.  Recovery
    of k records over n entries thus costs O(n + Δ) instead of O(k·n).

    Like {!replay}, no legality checks and no durability hook — callers
    own both (see {!Bounds_store.Store} recovery and bulk load). *)
module Bulk : sig
  type session := t
  type t

  (** [`Auto] applies the cost crossover; [`Batch] and [`Incremental]
      force a regime (differential testing, benchmarks). *)
  type mode = [ `Auto | `Batch | `Incremental ]

  val start : ?mode:mode -> session -> t

  (** Fold one transaction in (mutates the builder).  On [Error] the
      builder is unchanged and still usable; the record is not counted. *)
  val add : t -> Update.op list -> (unit, Monitor.rejection) result

  (** Transactions accepted so far. *)
  val txns : t -> int

  (** Whether the crossover has flipped to the batch regime. *)
  val batched : t -> bool

  (** The ingested session: the live incremental version, or one bulk
      rebuild of every deferred structure. *)
  val finish : t -> session
end

(** The current version's (index, vindex, memo) as an immutable
    {!Snapshot} — remains valid after further [apply]s on the session. *)
val snapshot : t -> Snapshot.t

(** Shut down the session-owned pool, if any ([jobs] in {!open_}).  The
    session data remains usable (sequentially) afterwards. *)
val close : t -> unit

(** {1 Stats} *)

type stats = {
  entries : int;  (** instance size of the current version *)
  queries : int;  (** queries/searches/explains served by the session *)
  applied : int;  (** accepted transactions *)
  rejected : int;  (** rejected transactions *)
  memo_hits : int;
  memo_misses : int;
  memo_entries : int;
  memo_migrated : int;  (** cache entries carried across updates *)
  memo_dropped : int;  (** χ-dependent entries re-evaluated instead *)
  intern : Intern.stat list;
      (** process-wide hash-cons pool counters (attr/oclass/rdn/value/vkey) *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
