open Bounds_model

let check ?pool (schema : Schema.t) inst =
  if Attr.Set.is_empty schema.keys then []
  else begin
    (* Per-chunk (key value → holders) tables built over disjoint entry
       ranges, merged in chunk order; the final per-key sort and the
       violation sort make the output independent of the partitioning. *)
    let entries =
      Array.of_list (List.rev (Instance.fold (fun e acc -> e :: acc) inst []))
    in
    let build ~lo ~hi =
      let seen : (string * string, Entry.id list) Hashtbl.t = Hashtbl.create 64 in
      for i = lo to hi - 1 do
        let e = entries.(i) in
        Attr.Set.iter
          (fun attr ->
            List.iter
              (fun v ->
                let k = (Attr.to_string attr, Value.to_string v) in
                let prev =
                  match Hashtbl.find_opt seen k with Some l -> l | None -> []
                in
                Hashtbl.replace seen k (Entry.id e :: prev))
              (Entry.values e attr))
          schema.keys
      done;
      seen
    in
    let seen =
      match
        Bounds_par.Pool.map_chunks ?pool ~align:1 (Array.length entries) build
      with
      | [] -> Hashtbl.create 16
      | first :: rest ->
          List.iter
            (fun tbl ->
              Hashtbl.iter
                (fun k l ->
                  let prev =
                    match Hashtbl.find_opt first k with Some l -> l | None -> []
                  in
                  Hashtbl.replace first k (l @ prev))
                tbl)
            rest;
          first
    in
    Hashtbl.fold
      (fun (a, v) entries acc ->
        match entries with
        | [] | [ _ ] -> acc
        | _ ->
            Violation.Duplicate_key
              {
                attr = Attr.of_string a;
                value = Value.String v;
                entries = List.sort Int.compare entries;
              }
            :: acc)
      seen []
    |> List.sort Violation.compare
  end
