(** The one admission verdict spoken by every write surface.

    {!Directory.apply}, {!Bounds_store.Store.apply},
    {!Bounds_store.Store.batch} and the network server's writer thread
    all report the outcome of a transaction as one {!result}: what the
    monitor decided ([Accepted]/[Rejected] with the {!Monitor.rejection}
    evidence), the ops it decided about, the size change it caused, and
    — once a durable layer has logged it — the log sequence number.

    [lsn] is [None] at the {!Directory} layer (a session has no log) and
    filled in by {!Bounds_store.Store.apply} after its commit hook has
    made the record durable. *)

open Bounds_model

type result =
  | Accepted of {
      lsn : int option;  (** durable log position, once a store logged it *)
      ops : Update.op list;
      entries_before : int;
      entries_after : int;
    }
  | Rejected of { reason : Monitor.rejection; ops : Update.op list }

val accepted : result -> bool
val ops : result -> Update.op list

(** [None] for rejections and for layers without a log. *)
val lsn : result -> int option

(** [Some] exactly when rejected. *)
val reason : result -> Monitor.rejection option

(** Entry-count change; [0] for rejections. *)
val entries_delta : result -> int

(** Stamp the durable position onto an accepted verdict (identity on
    rejections) — used by the store layer after its WAL append. *)
val with_lsn : int -> result -> result

val pp : Format.formatter -> result -> unit
