(** Structure-schema legality (Section 3.2).

    Legality is decided by evaluating the Figure-4 queries of every
    structure-schema element against the instance: required-relationship
    and forbidden-relationship queries must come back empty,
    required-class queries non-empty.  Each query evaluates in
    O(|Q|·|D|) via {!Bounds_query.Eval}, giving the overall
    O(|S|·|D|)-flavoured bound of Theorem 3.1. *)

open Bounds_model
open Bounds_query

(** [check schema inst] returns all structure violations, with witness
    entries extracted from the query results.  [index]/[vindex] may be
    supplied to reuse work across calls on the same instance version.
    With a [pool], the independent obligations of [Translate.all] are
    evaluated one-per-task across the workers and merged in stable
    obligation order — the output is bit-identical to the sequential
    engine.

    When [memoize] is [true] (default), the obligation queries evaluate
    through a {!Bounds_query.Plan} memo scoped to this snapshot: shared
    subqueries (class selections, χ frames) are computed exactly once,
    sequentially, before the fan-out reads the cache.  A vindex is built
    automatically if none is supplied.  [memoize:false] restores the
    direct per-obligation {!Eval.eval} path (the benchmark baseline).

    [memo], when given, is used instead of a fresh memo (overriding
    [memoize:false]): a live session passes the cache it migrated across
    the last update with {!Bounds_query.Plan.memo_apply}, so only the
    entries migration dropped are re-evaluated by the prewarm.  The memo
    must be scoped to an (index, vindex) snapshot of [inst]. *)
val check :
  ?pool:Bounds_par.Pool.t ->
  ?index:Index.t ->
  ?vindex:Vindex.t ->
  ?memo:Plan.memo ->
  ?memoize:bool ->
  Schema.t ->
  Instance.t ->
  Violation.t list

val is_legal :
  ?pool:Bounds_par.Pool.t ->
  ?index:Index.t ->
  ?vindex:Vindex.t ->
  ?memo:Plan.memo ->
  ?memoize:bool ->
  Schema.t ->
  Instance.t ->
  bool
