(** Structure-schema legality (Section 3.2).

    Legality is decided by evaluating the Figure-4 queries of every
    structure-schema element against the instance: required-relationship
    and forbidden-relationship queries must come back empty,
    required-class queries non-empty.  Each query evaluates in
    O(|Q|·|D|) via {!Bounds_query.Eval}, giving the overall
    O(|S|·|D|)-flavoured bound of Theorem 3.1. *)

open Bounds_model
open Bounds_query

(** [check schema inst] returns all structure violations, with witness
    entries extracted from the query results.  [index]/[vindex] may be
    supplied to reuse work across calls on the same instance version.
    With a [pool], the independent obligations of [Translate.all] are
    evaluated one-per-task across the workers and merged in stable
    obligation order — the output is bit-identical to the sequential
    engine. *)
val check :
  ?pool:Bounds_par.Pool.t ->
  ?index:Index.t ->
  ?vindex:Vindex.t ->
  Schema.t ->
  Instance.t ->
  Violation.t list

val is_legal :
  ?pool:Bounds_par.Pool.t ->
  ?index:Index.t ->
  ?vindex:Vindex.t ->
  Schema.t ->
  Instance.t ->
  bool
