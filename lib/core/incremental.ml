open Bounds_model
open Bounds_query

(* --- the Figure 5 table ---------------------------------------------- *)

let testable_on_insert_req (_ : Structure_schema.rel) = true

let testable_on_delete_req = function
  | Structure_schema.Child | Structure_schema.Descendant -> false
  | Structure_schema.Parent | Structure_schema.Ancestor -> true

let testable_on_insert_forb (_ : Structure_schema.forb) = true
let testable_on_delete_forb (_ : Structure_schema.forb) = true

type scope = On_delta | On_base | On_updated | On_empty

let pp_scope ppf s =
  Format.pp_print_string ppf
    (match s with
    | On_delta -> "[Δ]"
    | On_base -> "[D]"
    | On_updated -> "[D±Δ]"
    | On_empty -> "[∅]")

let oc c = Printf.sprintf "(objectClass=%s)" (Oclass.to_string c)

let delta_query_insert (ci, r, cj) =
  match r with
  | Structure_schema.Child ->
      [ (oc ci, On_delta); ("chi_c " ^ oc ci, On_delta); (oc cj, On_delta) ]
  | Structure_schema.Descendant ->
      [ (oc ci, On_delta); ("chi_d " ^ oc ci, On_delta); (oc cj, On_delta) ]
  | Structure_schema.Parent ->
      [ (oc ci, On_delta); ("chi_p " ^ oc ci, On_delta); (oc cj, On_updated) ]
  | Structure_schema.Ancestor ->
      [ (oc ci, On_delta); ("chi_a " ^ oc ci, On_delta); (oc cj, On_updated) ]

let delta_query_delete_req (ci, r, cj) =
  match r with
  | Structure_schema.Child | Structure_schema.Descendant ->
      [ (oc ci, On_updated); ("chi " ^ oc ci, On_updated); (oc cj, On_updated) ]
  | Structure_schema.Parent | Structure_schema.Ancestor ->
      [ (oc ci, On_empty); ("chi " ^ oc ci, On_empty); (oc cj, On_empty) ]

(* --- insertion -------------------------------------------------------- *)

let classes_on_path base start =
  (* union of class sets of [start] and all its ancestors in [base] *)
  let rec go acc = function
    | None -> acc
    | Some id ->
        let e = Instance.entry base id in
        go (Oclass.Set.union acc (Entry.classes e)) (Instance.parent base id)
  in
  go Oclass.Set.empty start

let check_insert ?(extensions = false) ?delta_index (schema : Schema.t) ~base
    ~parent ~delta =
  if Instance.is_empty delta then Error "empty insertion"
  else
    match Instance.roots delta with
    | [] | _ :: _ :: _ -> Error "insertion must be a single-rooted subtree"
    | [ delta_root ] -> (
        match parent with
        | Some p when not (Instance.mem base p) ->
            Error (Printf.sprintf "insertion parent %d does not exist" p)
        | _ ->
            let viols = ref [] in
            let add v = viols := v :: !viols in
            (* content: per-entry, so Δ-local *)
            Instance.iter
              (fun e -> List.iter add (Content_legality.check_entry schema e))
              delta;
            if extensions then
              Instance.iter
                (fun e -> List.iter add (Single_valued.check_entry schema e))
                delta;
            (* structure — the Δ index is built at most once per
               transaction step: callers that also need it (to splice Δ
               into a live index) pass it in *)
            let ix =
              match delta_index with Some ix -> ix | None -> Index.create delta
            in
            let path_classes = classes_on_path base parent in
            let parent_classes =
              match parent with
              | None -> Oclass.Set.empty
              | Some p -> Entry.classes (Instance.entry base p)
            in
            let delta_has cls =
              not (Bitset.is_empty (Eval.eval ix (Query.select_class cls)))
            in
            List.iter
              (fun ((ci, r, cj) as rel) ->
                let violators_within ax =
                  let si = Query.select_class ci and sj = Query.select_class cj in
                  Eval.eval ix (Query.Minus (si, Query.Chi (ax, si, sj)))
                in
                match r with
                | Structure_schema.Child ->
                    Bitset.iter
                      (fun rk ->
                        add
                          (Violation.Unsatisfied_rel
                             { entry = Index.id_of_rank ix rk; rel }))
                      (violators_within Query.Child)
                | Structure_schema.Descendant ->
                    Bitset.iter
                      (fun rk ->
                        add
                          (Violation.Unsatisfied_rel
                             { entry = Index.id_of_rank ix rk; rel }))
                      (violators_within Query.Descendant)
                | Structure_schema.Parent ->
                    (* Δ-root's parent lives in the base *)
                    Bitset.iter
                      (fun rk ->
                        let id = Index.id_of_rank ix rk in
                        let satisfied_by_base =
                          id = delta_root && Oclass.Set.mem cj parent_classes
                        in
                        if not satisfied_by_base then
                          add (Violation.Unsatisfied_rel { entry = id; rel }))
                      (violators_within Query.Parent)
                | Structure_schema.Ancestor ->
                    (* every Δ entry shares the base ancestors of the root *)
                    if not (Oclass.Set.mem cj path_classes) then
                      Bitset.iter
                        (fun rk ->
                          add
                            (Violation.Unsatisfied_rel
                               { entry = Index.id_of_rank ix rk; rel }))
                        (violators_within Query.Ancestor))
              (Structure_schema.required_rels schema.structure);
            List.iter
              (fun ((ci, f, cj) as rel) ->
                let ax =
                  match f with
                  | Structure_schema.F_child -> Query.Child
                  | Structure_schema.F_descendant -> Query.Descendant
                in
                (* offending pairs within Δ *)
                let offenders =
                  Eval.eval ix
                    (Query.Chi (ax, Query.select_class ci, Query.select_class cj))
                in
                Bitset.iter
                  (fun rk ->
                    let src = Index.id_of_rank ix rk in
                    let has_cls id = Entry.has_class (Instance.entry delta id) cj in
                    let targets =
                      match f with
                      | Structure_schema.F_child ->
                          List.filter has_cls (Instance.children delta src)
                      | Structure_schema.F_descendant ->
                          List.filter has_cls (Instance.descendants delta src)
                    in
                    List.iter
                      (fun target ->
                        add (Violation.Forbidden_rel { source = src; target; rel }))
                      targets)
                  offenders;
                (* cross pairs: base ancestors of the insertion point above,
                   Δ entries below *)
                match f with
                | Structure_schema.F_child ->
                    (match parent with
                    | Some p
                      when Oclass.Set.mem ci parent_classes
                           && Entry.has_class (Instance.entry delta delta_root) cj ->
                        add
                          (Violation.Forbidden_rel
                             { source = p; target = delta_root; rel })
                    | _ -> ())
                | Structure_schema.F_descendant ->
                    if Oclass.Set.mem ci path_classes && delta_has cj then begin
                      (* all base ancestors of class ci × all Δ entries of
                         class cj — the exact new offending pairs *)
                      let rec anc_sources acc = function
                        | None -> List.rev acc
                        | Some id ->
                            let acc =
                              if Entry.has_class (Instance.entry base id) ci then
                                id :: acc
                              else acc
                            in
                            anc_sources acc (Instance.parent base id)
                      in
                      let sources = anc_sources [] parent in
                      let targets =
                        Index.ids_of ix (Eval.eval ix (Query.select_class cj))
                      in
                      List.iter
                        (fun src ->
                          List.iter
                            (fun target ->
                              add
                                (Violation.Forbidden_rel { source = src; target; rel }))
                            targets)
                        sources
                    end)
              (Structure_schema.forbidden_rels schema.structure);
            (* required classes: insertion can only help — no check *)
            Ok (List.rev !viols))

(* --- deletion --------------------------------------------------------- *)

(* Depth-first search for an entry of class [cls] strictly below [id],
   with early exit. *)
let rec has_descendant_of_class inst cls id =
  List.exists
    (fun c ->
      Entry.has_class (Instance.entry inst c) cls
      || has_descendant_of_class inst cls c)
    (Instance.children inst id)

let check_delete ?class_count (schema : Schema.t) ~base ~root =
  if not (Instance.mem base root) then
    Error (Printf.sprintf "no entry %d to delete" root)
  else begin
    let remaining =
      match Instance.remove_subtree root base with
      | Ok r -> r
      | Error e -> failwith (Instance.error_to_string e)
    in
    let viols = ref [] in
    let add v = viols := v :: !viols in
    let parent = Instance.parent base root in
    let ancestors = Instance.ancestors base root in
    (* required child: only the deletion parent lost a child *)
    List.iter
      (fun ((ci, r, cj) as rel) ->
        match (r, parent) with
        | Structure_schema.Child, Some p ->
            let pe = Instance.entry remaining p in
            if Entry.has_class pe ci then begin
              let ok =
                List.exists
                  (fun c -> Entry.has_class (Instance.entry remaining c) cj)
                  (Instance.children remaining p)
              in
              if not ok then add (Violation.Unsatisfied_rel { entry = p; rel })
            end
        | Structure_schema.Descendant, _ ->
            (* only ancestors of the deleted root lost descendants; check
               from the nearest ci-ancestor upward with early success *)
            let rec check_up = function
              | [] -> ()
              | a :: above ->
                  if Entry.has_class (Instance.entry remaining a) ci then
                    if has_descendant_of_class remaining cj a then
                      () (* that witness also serves every ancestor above *)
                    else begin
                      add (Violation.Unsatisfied_rel { entry = a; rel });
                      check_up above
                    end
                  else check_up above
            in
            check_up ancestors
        | (Structure_schema.Child | Structure_schema.Parent | Structure_schema.Ancestor), _ ->
            (* parent/ancestor requirements cannot break: surviving entries
               keep their ancestors (Figure 5: no check) *)
            ())
      (Structure_schema.required_rels schema.structure);
    (* forbidden relationships: deletion removes pairs, never adds *)
    (* required classes *)
    let deleted_counts =
      let rec count acc id =
        let acc =
          Oclass.Set.fold
            (fun c m ->
              Oclass.Map.update c
                (fun n -> Some (1 + Option.value ~default:0 n))
                m)
            (Entry.classes (Instance.entry base id))
            acc
        in
        List.fold_left count acc (Instance.children base id)
      in
      count Oclass.Map.empty root
    in
    Oclass.Set.iter
      (fun c ->
        match Oclass.Map.find_opt c deleted_counts with
        | None -> () (* no entry of that class deleted *)
        | Some k ->
            let still_there =
              match class_count with
              | Some count -> count c - k > 0
              | None ->
                  Instance.fold
                    (fun e ok -> ok || Entry.has_class e c)
                    remaining false
            in
            if not still_there then
              add (Violation.Missing_required_class { cls = c }))
      (Structure_schema.required_classes schema.structure);
    Ok (List.rev !viols)
  end
