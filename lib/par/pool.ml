type batch = {
  tasks : (unit -> unit) array;
  mutable next : int; (* first task not yet claimed *)
  mutable pending : int; (* tasks claimed-or-not but not finished *)
  mutable failed : exn option; (* first exception raised by a task *)
}

type t = {
  m : Mutex.t;
  work : Condition.t; (* a batch with unclaimed tasks, or stop *)
  finished : Condition.t; (* the current batch fully drained *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  total : int;
}

(* Set while this domain is executing a pool task: a nested [run] on any
   pool would wait on a batch that cannot finish without the waiter, so
   nested submissions execute inline instead. *)
let in_task = Domain.DLS.new_key (fun () -> false)

(* Claim and execute tasks of [b] until none are unclaimed.  Called and
   returns with [t.m] held. *)
let exec_tasks t b =
  while b.next < Array.length b.tasks do
    let i = b.next in
    b.next <- i + 1;
    Mutex.unlock t.m;
    Domain.DLS.set in_task true;
    let outcome = try b.tasks.(i) (); None with e -> Some e in
    Domain.DLS.set in_task false;
    Mutex.lock t.m;
    (match (outcome, b.failed) with
    | Some e, None -> b.failed <- Some e
    | _ -> ());
    b.pending <- b.pending - 1;
    if b.pending = 0 then begin
      t.batch <- None;
      Condition.broadcast t.finished
    end
  done

let worker t =
  Mutex.lock t.m;
  let rec loop () =
    match t.batch with
    | Some b when b.next < Array.length b.tasks ->
        exec_tasks t b;
        loop ()
    | _ ->
        if t.stop then Mutex.unlock t.m
        else begin
          Condition.wait t.work t.m;
          loop ()
        end
  in
  loop ()

let create ?domains () =
  let total =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let total = min total 128 in
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      stop = false;
      workers = [||];
      total;
    }
  in
  t.workers <- Array.init (total - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let domains t = t.total

let shutdown t =
  Mutex.lock t.m;
  if t.stop then Mutex.unlock t.m
  else begin
    while t.batch <> None do
      Condition.wait t.finished t.m
    done;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run t tasks =
  let len = Array.length tasks in
  if len = 0 then ()
  else if t.total <= 1 || len = 1 || Domain.DLS.get in_task then
    Array.iter (fun f -> f ()) tasks
  else begin
    Mutex.lock t.m;
    if t.stop then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.run: pool is shut down"
    end;
    while t.batch <> None do
      Condition.wait t.finished t.m
    done;
    let b = { tasks; next = 0; pending = len; failed = None } in
    t.batch <- Some b;
    Condition.broadcast t.work;
    exec_tasks t b;
    while b.pending > 0 do
      Condition.wait t.finished t.m
    done;
    Mutex.unlock t.m;
    match b.failed with Some e -> raise e | None -> ()
  end

let chunks ?pool ?(align = 64) ?(oversub = 4) n =
  if n <= 0 then []
  else
    let d = match pool with None -> 1 | Some p -> p.total in
    if d <= 1 then [ (0, n) ]
    else begin
      let align = max 1 align in
      let target = max 1 (d * max 1 oversub) in
      let size = (n + target - 1) / target in
      let size = (size + align - 1) / align * align in
      let rec go lo acc =
        if lo >= n then List.rev acc
        else
          let hi = min n (lo + size) in
          go hi ((lo, hi) :: acc)
      in
      go 0 []
    end

let map_chunks ?pool ?align ?oversub n f =
  match chunks ?pool ?align ?oversub n with
  | [] -> []
  | [ (lo, hi) ] -> [ f ~lo ~hi ]
  | cs ->
      (* more than one chunk implies a real pool *)
      let pool = Option.get pool in
      let cs = Array.of_list cs in
      let results = Array.make (Array.length cs) None in
      let tasks =
        Array.mapi (fun i (lo, hi) -> fun () -> results.(i) <- Some (f ~lo ~hi)) cs
      in
      run pool tasks;
      Array.to_list (Array.map Option.get results)

let parallel_for ?pool ?align ?oversub n f =
  match chunks ?pool ?align ?oversub n with
  | [] -> ()
  | [ (lo, hi) ] -> f ~lo ~hi
  | cs ->
      let pool = Option.get pool in
      let tasks = Array.of_list (List.map (fun (lo, hi) -> fun () -> f ~lo ~hi) cs) in
      run pool tasks

let map_array ?pool f a =
  let n = Array.length a in
  if n = 0 then [||]
  else
    match pool with
    | None -> Array.map f a
    | Some p when p.total <= 1 -> Array.map f a
    | Some _ as pool ->
        let out = Array.make n None in
        parallel_for ?pool ~align:1 n (fun ~lo ~hi ->
            for i = lo to hi - 1 do
              out.(i) <- Some (f a.(i))
            done);
        Array.map Option.get out
