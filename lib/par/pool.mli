(** Fixed-size domain pool for data-parallel sweeps.

    A from-scratch, dependency-free worker pool over [Domain], [Mutex] and
    [Condition]: [create ~domains:d ()] spawns [d - 1] worker domains; the
    submitting domain is the [d]-th worker, so a pool of size 1 spawns
    nothing and every combinator degrades to its sequential meaning.  All
    combinators also accept [?pool:None] (the default), which is the
    documented sequential fallback — existing call sites keep working and
    keep their exact output.

    Determinism contract: the combinators below assign work by index and
    deliver results positionally, so the {e result} of a parallel call is a
    pure function of its inputs — identical to the sequential fallback —
    whatever the interleaving of the workers.  Only effects performed by
    the tasks themselves can observe scheduling order.

    Submitting from inside a task (nested [run]) is detected and executed
    inline on the calling domain, sequentially, instead of deadlocking on
    the shared queue. *)

type t

(** [create ?domains ()] — total parallelism [max 1 domains], defaulting
    to [Domain.recommended_domain_count ()].  [domains - 1] worker domains
    are spawned and parked on a condition variable until work arrives. *)
val create : ?domains:int -> unit -> t

(** Total parallelism of the pool, including the submitting domain. *)
val domains : t -> int

(** Join the worker domains.  Idempotent; the pool must not be used
    afterwards (a subsequent [run] raises [Invalid_argument]). *)
val shutdown : t -> unit

(** [with_pool ?domains f] — [create], apply [f], [shutdown] (also on
    exception). *)
val with_pool : ?domains:int -> (t -> 'a) -> 'a

(** [run pool tasks] executes every task exactly once, on the pool's
    workers plus the calling domain, and returns when all are finished.
    The first task exception (if any) is re-raised in the caller after the
    batch drains.  Tasks must not [run] on the same pool (nested calls are
    executed inline instead). *)
val run : t -> (unit -> unit) array -> unit

(** [chunks ?pool ?align ?oversub n] — the chunk layout the combinators
    below use: [ [(lo, hi); ...] ] partitioning [0..n-1] in increasing
    order.  Every boundary except the last is a multiple of [align]
    (default 64), so byte- and word-addressed writes into disjoint chunks
    of a shared buffer never touch the same memory.  Without a pool (or
    with a 1-domain pool) the layout is a single chunk.  [oversub]
    (default 4) controls load-balancing: the target is
    [oversub * domains] chunks. *)
val chunks : ?pool:t -> ?align:int -> ?oversub:int -> int -> (int * int) list

(** [map_chunks ?pool ?align ?oversub n f] — apply [f ~lo ~hi] to each
    chunk of the layout above, in parallel, and return the results in
    chunk order (so merges are deterministic). *)
val map_chunks :
  ?pool:t -> ?align:int -> ?oversub:int -> int -> (lo:int -> hi:int -> 'a) -> 'a list

(** [parallel_for ?pool ?align ?oversub n f] — [f ~lo ~hi] for each chunk,
    for effect.  The caller is responsible for making chunk effects
    disjoint (the [align]ed boundaries make disjoint [Bitset] / [Bytes]
    slices safe). *)
val parallel_for :
  ?pool:t -> ?align:int -> ?oversub:int -> int -> (lo:int -> hi:int -> unit) -> unit

(** [map_array ?pool f a] — [Array.map f a], chunked across the pool.
    [f] must be pure (it may run on any domain). *)
val map_array : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
