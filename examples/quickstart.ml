(* Quickstart: define a bounding-schema in the spec language, load a
   directory from LDIF, check legality, and ask whether the schema is
   satisfiable at all.

   Run with:  dune exec examples/quickstart.exe *)

open Bounds_core

let schema_spec =
  {|
# A tiny team directory.
attribute name : string
attribute uid : string
attribute mail : string

class team { required: name }
class person { required: name, uid; aux: online }
auxiliary online { allowed: mail }

# lower bounds: the directory must contain at least one team, every team
# must (transitively) contain a person, every person sits inside a team
require exists team
require team descendant person
require person ancestor team

# upper bound: people are leaves
forbid person child top

key uid
|}

let directory_ldif =
  {|
dn: name=research
objectClass: team
objectClass: top
name: research

dn: uid=ada,name=research
objectClass: person
objectClass: online
objectClass: top
name: Ada Lovelace
uid: ada
mail: ada@example.org

dn: uid=alan,name=research
objectClass: person
objectClass: top
name: Alan Turing
uid: alan
|}

let () =
  (* 1. parse the schema *)
  let schema = Spec_parser.parse_exn schema_spec in
  Format.printf "=== schema ===@.%s@." (Spec_printer.to_string schema);

  (* 2. is the schema consistent?  (Section 5 of the paper) *)
  (match Consistency.decide schema with
  | Consistency.Consistent { witness; _ } ->
      Format.printf "schema is consistent; a minimal legal directory:@.%a@."
        Bounds_model.Instance.pp witness
  | Consistency.Inconsistent { proof; _ } ->
      Format.printf "schema is INCONSISTENT:@.%a@." Inference.pp_proof proof
  | Consistency.Unresolved { reason; _ } -> Format.printf "unresolved: %s@." reason);

  (* 3. load a directory instance from LDIF *)
  let inst = Bounds_codec.Ldif.parse_exn ~typing:schema.Schema.typing directory_ldif in
  Format.printf "=== directory (%d entries) ===@.%a@."
    (Bounds_model.Instance.size inst) Bounds_model.Instance.pp inst;

  (* 4. check legality (Section 3) *)
  (match Legality.check schema inst with
  | [] -> Format.printf "the directory is LEGAL@."
  | viols ->
      Format.printf "violations:@.";
      List.iter (fun v -> Format.printf "  - %s@." (Violation.to_string v)) viols);

  (* 5. try an update: adding an empty team must be rejected, adding a
     team with a member accepted (Section 4, incremental check) *)
  let monitor = Result.get_ok (Monitor.create schema inst) in
  let team name =
    Bounds_model.Entry.make ~id:100 ~rdn:("name=" ^ name)
      ~classes:(Bounds_model.Oclass.set_of_list [ "team"; "top" ])
      [ (Bounds_model.Attr.of_string "name", Bounds_model.Value.String name) ]
  in
  let empty_team =
    Bounds_model.Instance.add_root_exn (team "skunkworks") Bounds_model.Instance.empty
  in
  (match Monitor.insert_subtree ~parent:None empty_team monitor with
  | Error viols ->
      Format.printf "empty team rejected, as it should be:@.";
      List.iter (fun v -> Format.printf "  - %s@." (Violation.to_string v)) viols
  | Ok _ -> Format.printf "BUG: empty team accepted?!@.");
  let staffed_team =
    Bounds_model.Instance.add_child_exn ~parent:100
      (Bounds_model.Entry.make ~id:101 ~rdn:"uid=grace"
         ~classes:(Bounds_model.Oclass.set_of_list [ "person"; "top" ])
         [
           (Bounds_model.Attr.of_string "name", Bounds_model.Value.String "Grace Hopper");
           (Bounds_model.Attr.of_string "uid", Bounds_model.Value.String "grace");
         ])
      empty_team
  in
  match Monitor.insert_subtree ~parent:None staffed_team monitor with
  | Ok (m, _) ->
      Format.printf "staffed team accepted; directory now has %d entries@."
        (Bounds_model.Instance.size (Monitor.instance m))
  | Error viols ->
      Format.printf "unexpected rejection:@.";
      List.iter (fun v -> Format.printf "  - %s@." (Violation.to_string v)) viols
