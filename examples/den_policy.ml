(* A directory-enabled-networks (DEN) policy directory: the paper's
   motivating application domain beyond white pages.  Builds a site /
   device / interface / policy directory, queries it with hierarchical
   selection queries, and exercises schema-checked reconfiguration.

   Run with:  dune exec examples/den_policy.exe *)

open Bounds_model
open Bounds_core
open Bounds_query
module Den = Bounds_workload.Den

let section title = Format.printf "@.==== %s ====@." title

let () =
  let schema = Den.schema in
  let inst =
    Den.generate ~seed:2026 ~sites:2 ~devices_per_site:3 ~interfaces_per_device:2
      ~policies:4 ()
  in
  section "the network directory";
  Format.printf "%a" Instance.pp inst;
  Format.printf "legal: %b@." (Legality.is_legal schema inst);

  section "hierarchical queries over the network";
  let ix = Index.create inst in
  let vx = Vindex.create ix in
  let run label q =
    let ids = Index.ids_of ix (Eval.eval ~vindex:vx ix (Query_parser.parse_exn q)) in
    Format.printf "%-48s -> %d entries %s@." label (List.length ids)
      (String.concat ","
         (List.map (fun id -> Entry.rdn (Instance.entry inst id)) ids))
  in
  run "routers" "(objectClass=router)";
  run "fast interfaces (speed >= 5000)" "(&(objectClass=interface)(speed>=5000))";
  run "devices with an interface child"
    "(chi c (objectClass=device) (objectClass=interface))";
  run "interfaces on routers" "(chi p (objectClass=interface) (objectClass=router))";
  run "sites containing a managed device"
    "(chi d (objectClass=site) (objectClass=managed))";
  run "QoS policies" "(objectClass=qosPolicy)";

  section "schema-checked reconfiguration";
  let m = Result.get_ok (Monitor.create schema inst) in
  (* adding an interface at top level violates interface <-parent- device *)
  let stray_iface =
    Instance.add_root_exn
      (Entry.make ~id:900 ~rdn:"ifname=stray"
         ~classes:(Oclass.set_of_list [ "interface"; "top" ])
         [ (Attr.of_string "ifname", Value.String "stray") ])
      Instance.empty
  in
  (match Monitor.insert_subtree ~parent:None stray_iface m with
  | Error viols ->
      Format.printf "stray interface rejected:@.";
      List.iter (fun v -> Format.printf "  - %s@." (Violation.to_string v)) viols
  | Ok _ -> assert false);
  (* decommissioning a whole site is fine as long as one remains *)
  let some_site =
    List.find
      (fun id -> Entry.has_class (Instance.entry inst id) (Oclass.of_string "site"))
      (Instance.roots inst)
  in
  (match Monitor.delete_subtree some_site m with
  | Ok (m', _) ->
      Format.printf "site %s decommissioned; %d entries remain, still legal: %b@."
        (Entry.rdn (Instance.entry inst some_site))
        (Instance.size (Monitor.instance m'))
        (Legality.is_legal schema (Monitor.instance m'))
  | Error _ -> assert false);

  section "is the DEN schema consistent?";
  match Consistency.decide schema with
  | Consistency.Consistent { witness; _ } ->
      Format.printf "yes — smallest legal deployment:@.%a" Instance.pp witness
  | Consistency.Inconsistent _ | Consistency.Unresolved _ -> assert false
