(* Update transactions at scale: a live white-pages directory under a
   stream of hires, transfers-by-recreation, and reorganizations, guarded
   by the incremental legality monitor (Section 4).

   Run with:  dune exec examples/updates_demo.exe *)

open Bounds_model
open Bounds_core
module WP = Bounds_workload.White_pages

let () =
  let schema = WP.schema in
  let base = WP.generate ~seed:1 ~units:20 ~persons_per_unit:4 () in
  Format.printf "starting directory: %d entries, legal: %b@." (Instance.size base)
    (Legality.is_legal schema base);
  let m = ref (Result.get_ok (Monitor.create schema base)) in
  let accepted = ref 0 and rejected = ref 0 in
  let try_ops label ops =
    match Monitor.apply ops !m with
    | Ok (m', _) ->
        incr accepted;
        m := m';
        Format.printf "[ok]      %s@." label
    | Error r ->
        incr rejected;
        Format.printf "[reject]  %s@.          %a@." label
          (fun ppf -> Monitor.pp_rejection ppf)
          r
  in
  let person ~id ~uid =
    Entry.make ~id ~rdn:("uid=" ^ uid)
      ~classes:(Oclass.set_of_list [ "person"; "staffmember"; "top" ])
      [
        (Attr.of_string "uid", Value.String uid);
        (Attr.of_string "name", Value.String ("name " ^ uid));
      ]
  in
  let unit ~id ~ou =
    Entry.make ~id ~rdn:("ou=" ^ ou)
      ~classes:(Oclass.set_of_list [ "orgunit"; "orggroup"; "top" ])
      [ (Attr.of_string "ou", Value.String ou) ]
  in
  let some_unit =
    Instance.fold
      (fun e acc ->
        if Entry.has_class e (Oclass.of_string "orgunit") then Entry.id e :: acc
        else acc)
      base []
    |> List.hd
  in
  let some_person =
    Instance.fold
      (fun e acc ->
        if Entry.has_class e (Oclass.of_string "person") then Entry.id e :: acc
        else acc)
      base []
    |> List.hd
  in
  let fresh = Instance.fresh_id base in

  (* a hire *)
  try_ops "hire one person into an existing unit"
    [ Update.Insert { parent = Some some_unit; entry = person ~id:fresh ~uid:"hire1" } ];

  (* an empty reorg: must be rejected (no person below the new unit) *)
  try_ops "create an empty organizational unit"
    [ Update.Insert { parent = Some some_unit; entry = unit ~id:(fresh + 1) ~ou:"empty" } ];

  (* the same reorg staffed: accepted as one transaction *)
  try_ops "create a unit together with two hires"
    [
      Update.Insert { parent = Some some_unit; entry = unit ~id:(fresh + 1) ~ou:"newlab" };
      Update.Insert { parent = Some (fresh + 1); entry = person ~id:(fresh + 2) ~uid:"hire2" };
      Update.Insert { parent = Some (fresh + 1); entry = person ~id:(fresh + 3) ~uid:"hire3" };
    ];

  (* structure rules: people are leaves *)
  try_ops "attach a unit underneath a person (forbidden)"
    [ Update.Insert { parent = Some some_person; entry = unit ~id:(fresh + 4) ~ou:"rogue" } ];

  (* duplicate uid: caught by the key extension *)
  try_ops "hire with a duplicate uid"
    [ Update.Insert { parent = Some some_unit; entry = person ~id:(fresh + 5) ~uid:"hire1" } ];

  (* fire someone (leaf deletion) *)
  try_ops "one departure" [ Update.Delete (fresh + 3) ];

  (* dissolve the new lab — would orphan hire2?  No: delete bottom-up in
     one transaction *)
  try_ops "dissolve the new lab"
    [ Update.Delete (fresh + 2); Update.Delete (fresh + 1) ];

  Format.printf "@.%d accepted, %d rejected; final size %d; final legality: %b@."
    !accepted !rejected
    (Instance.size (Monitor.instance !m))
    (Legality.is_legal schema (Monitor.instance !m))
