(* ldapschema — command-line front end for the bounding-schema library.

   Subcommands:
     validate    check an LDIF directory against a schema spec
     consistent  decide schema consistency; optionally emit a witness
     query       evaluate a hierarchical selection query over a directory
     update      apply an LDIF change file under incremental legality
     load        stream-bulk-load LDIF entries into a durable store
     fmt         parse a schema spec and print its canonical form
     generate    emit a benchmark workload as LDIF
     fuzz        differential fuzzing over the oracle registry
     log         describe a durable store's checkpoint and log tail
     checkpoint  compact a durable store
     serve       run the directory server over a durable store
     client      send one request to a running server
     traffic     drive mixed read/write load at a running server

   validate/query/update also accept [--store DIR] to run against a
   durable session (write-ahead log + checkpoint) instead of flat
   files. *)

open Bounds_model
open Bounds_core
module Store = Bounds_store.Store
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let load_schema path =
  match Spec_parser.parse (read_file path) with
  | Ok s -> Ok s
  | Error e ->
      Error (Printf.sprintf "%s: %s" path (Spec_parser.error_to_string e))

let load_data ~typing path =
  match Bounds_codec.Ldif.parse ~typing (read_file path) with
  | Ok inst -> Ok inst
  | Error e ->
      Error (Printf.sprintf "%s: %s" path (Bounds_codec.Ldif.error_to_string e))

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 2

(* --- arguments --------------------------------------------------------- *)

let schema_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "s"; "schema" ] ~docv:"SPEC" ~doc:"Bounding-schema specification file.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel legality/query engine.  1 \
           (default) runs the sequential engine; 0 uses the recommended \
           domain count of the machine.  Results are identical for every \
           value.")

(* [with_jobs jobs f] — run [f] with the domain pool the [--jobs] flag
   asks for ([None] = sequential), shutting the pool down afterwards. *)
let with_jobs jobs f =
  if jobs = 1 then f None
  else
    let domains = if jobs <= 0 then None else Some jobs in
    Bounds_par.Pool.with_pool ?domains (fun pool -> f (Some pool))

let data_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "d"; "data" ] ~docv:"LDIF" ~doc:"Directory instance in LDIF.")

(* optional variants for subcommands where --store can stand in *)
let schema_opt_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "s"; "schema" ] ~docv:"SPEC" ~doc:"Bounding-schema specification file.")

let data_opt_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "d"; "data" ] ~docv:"LDIF" ~doc:"Directory instance in LDIF.")

(* --- durable stores ----------------------------------------------------- *)

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Durable session directory (write-ahead log + checkpoint) to use \
           instead of flat $(b,-s)/$(b,-d) files.")

(* validate/query/update take -s/-d as optional and enforce them only in
   flat-file mode, where a store does not provide them *)
let required_arg flag = function
  | Some v -> v
  | None ->
      or_die (Error (Printf.sprintf "%s is required without --store" flag))

let store_io dir =
  if not (Sys.file_exists dir) then
    or_die (Error (Printf.sprintf "%s: no such store" dir));
  Bounds_store.Io.real ~root:dir ()

(* recover an existing store, announcing how far recovery got on [ppf]
   (stderr for subcommands whose stdout is data) *)
let open_store ?pool ?(ppf = Format.std_formatter) ?auto_checkpoint dir =
  let io = store_io dir in
  match Store.open_ ?pool ?auto_checkpoint io with
  | Ok (st, report) ->
      Format.fprintf ppf "store: %a@." Store.pp_report report;
      st
  | Error e ->
      or_die (Error (Printf.sprintf "%s: %s" dir (Store.error_to_string e)))

(* --- validate ----------------------------------------------------------- *)

(* one plan per Figure-4 obligation query, with est/actual columns *)
let explain_obligations ?pool snap (schema : Schema.t) =
  List.iter
    (fun (_, q, _) ->
      let plan, _ = Directory.Snapshot.explain ?pool snap q in
      Format.printf "%a@." Profile.pp_plan_explain (Profile.explain_plan plan))
    (Translate.all schema.Schema.structure)

let report_viols what entries = function
  | [] ->
      Printf.printf "%s: legal (%d entries)\n" what entries;
      0
  | viols ->
      Printf.printf "%s: ILLEGAL — %d violation(s)\n" what (List.length viols);
      List.iter (fun v -> Printf.printf "  - %s\n" (Violation.to_string v)) viols;
      1

let validate schema_path data_path naive no_extensions explain jobs store =
  match store with
  | Some dir ->
      (* the store's admission scan already vouches for the instance;
         this re-runs the full check on the recovered state *)
      with_jobs jobs (fun pool ->
          let st = open_store ?pool dir in
          Fun.protect
            ~finally:(fun () -> Store.close st)
            (fun () ->
              let d = Store.directory st in
              if explain then
                explain_obligations ?pool (Directory.snapshot d) (Store.schema st);
              report_viols dir (Directory.size d) (Directory.validate d)))
  | None ->
      let schema = or_die (load_schema (required_arg "-s/--schema" schema_path)) in
      let data_path = required_arg "-d/--data" data_path in
      let inst = or_die (load_data ~typing:schema.Schema.typing data_path) in
      let extensions = not no_extensions in
      let viols =
        if naive then begin
          if explain then
            with_jobs jobs (fun pool ->
                explain_obligations ?pool
                  (Directory.Snapshot.of_instance ?pool inst)
                  schema);
          Naive_legality.check ~extensions schema inst
        end
        else
          with_jobs jobs (fun pool ->
              let snap = Directory.Snapshot.of_instance ?pool inst in
              if explain then explain_obligations ?pool snap schema;
              Directory.Snapshot.validate ~extensions ?pool schema snap)
      in
      report_viols data_path (Instance.size inst) viols

let validate_cmd =
  let naive =
    Arg.(
      value & flag
      & info [ "naive" ] ~doc:"Use the quadratic pairwise checker (for comparison).")
  in
  let no_ext =
    Arg.(
      value & flag
      & info [ "no-extensions" ]
          ~doc:"Skip the single-valued and key checks (Section 6.1 extensions).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the physical plan of every Figure-4 obligation query, \
             with estimated vs actual cardinalities.")
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Check that an LDIF directory is legal w.r.t. a schema.")
    Term.(
      const validate $ schema_opt_arg $ data_opt_arg $ naive $ no_ext $ explain
      $ jobs_arg $ store_arg)

(* --- consistent ---------------------------------------------------------- *)

let consistent schema_path witness_path show_proof =
  let schema = or_die (load_schema schema_path) in
  match Consistency.decide schema with
  | Consistency.Consistent { witness; passes; derived } ->
      Printf.printf "consistent (saturation: %d passes, %d elements)\n" passes derived;
      (match witness_path with
      | Some path ->
          write_file path (Bounds_codec.Ldif.to_string witness);
          Printf.printf "witness (%d entries) written to %s\n" (Instance.size witness)
            path
      | None -> ());
      0
  | Consistency.Inconsistent { proof; passes; derived } ->
      Printf.printf "INCONSISTENT (saturation: %d passes, %d elements)\n" passes
        derived;
      if show_proof then Format.printf "%a@." Inference.pp_proof proof;
      1
  | Consistency.Unresolved { reason; _ } ->
      Printf.printf "unresolved: no contradiction derivable, but %s\n" reason;
      3

let consistent_cmd =
  let witness =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "witness" ] ~docv:"LDIF"
          ~doc:"Write a legal witness instance to this file.")
  in
  let proof =
    Arg.(value & flag & info [ "proof" ] ~doc:"Print the inconsistency derivation.")
  in
  Cmd.v
    (Cmd.info "consistent"
       ~doc:"Decide whether a bounding-schema admits any legal instance.")
    Term.(const consistent $ schema_arg $ witness $ proof)

(* --- query --------------------------------------------------------------- *)

let print_ids inst ids =
  Printf.printf "%d entries\n" (List.length ids);
  List.iter (fun id -> Printf.printf "%s\n" (Instance.dn inst id)) ids

let query schema_path data_path expr explain jobs store =
  let q =
    match Bounds_query.Query_parser.parse expr with
    | Ok q -> q
    | Error e -> or_die (Error ("query: " ^ Parse_error.to_string e))
  in
  match store with
  | Some dir ->
      with_jobs jobs (fun pool ->
          (* recovery notes go to stderr: stdout is the result set *)
          let st = open_store ?pool ~ppf:Format.err_formatter dir in
          Fun.protect
            ~finally:(fun () -> Store.close st)
            (fun () ->
              let d = Store.directory st in
              let ids =
                if explain then begin
                  let plan, result = Directory.explain d q in
                  Format.printf "%a@." Profile.pp_plan_explain
                    (Profile.explain_plan plan);
                  Bounds_query.Index.ids_of
                    (Directory.Snapshot.Private.index (Directory.snapshot d))
                    result
                end
                else Directory.query_ids d q
              in
              print_ids (Directory.instance d) ids;
              0))
  | None ->
      let typing =
        match schema_path with
        | Some p -> (or_die (load_schema p)).Schema.typing
        | None -> Typing.default
      in
      let inst = or_die (load_data ~typing (required_arg "-d/--data" data_path)) in
      let ids =
        with_jobs jobs (fun pool ->
            let snap = Directory.Snapshot.of_instance ?pool inst in
            if explain then begin
              let plan, result = Directory.Snapshot.explain ?pool snap q in
              Format.printf "%a@." Profile.pp_plan_explain
                (Profile.explain_plan plan);
              Bounds_query.Index.ids_of
                (Directory.Snapshot.Private.index snap) result
            end
            else Directory.Snapshot.query_ids ?pool snap q)
      in
      print_ids inst ids;
      0

let query_cmd =
  let schema_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "s"; "schema" ] ~docv:"SPEC" ~doc:"Schema spec (for attribute types).")
  in
  let expr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:
            "Hierarchical selection query, e.g. '(minus (objectClass=orgGroup) (chi \
             d (objectClass=orgGroup) (objectClass=person)))', or a bare LDAP \
             filter.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Evaluate through the cost-based planner and print the chosen \
             physical plan with estimated vs actual cardinalities.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate a hierarchical selection query over an LDIF file.")
    Term.(
      const query $ schema_opt $ data_opt_arg $ expr $ explain $ jobs_arg
      $ store_arg)

(* --- search ---------------------------------------------------------------- *)

let search schema_path data_path base_dn scope_str filter_str optimize jobs =
  let schema =
    match schema_path with Some p -> Some (or_die (load_schema p)) | None -> None
  in
  let typing =
    match schema with Some s -> s.Schema.typing | None -> Typing.default
  in
  let inst = or_die (load_data ~typing data_path) in
  let scope =
    match Bounds_query.Search.scope_of_string scope_str with
    | Ok s -> s
    | Error m -> or_die (Error m)
  in
  let filter =
    match Bounds_query.Filter_parser.parse filter_str with
    | Ok f -> f
    | Error e -> or_die (Error ("filter: " ^ Parse_error.to_string e))
  in
  let base =
    match base_dn with
    | None -> None
    | Some dn -> (
        match Instance.resolve_dn inst dn with
        | Some id -> Some id
        | None -> or_die (Error (Printf.sprintf "base %S not found" dn)))
  in
  let filter =
    match (optimize, schema) with
    | true, Some s -> (
        let inf = Inference.saturate s in
        match Optimize.simplify inf (Bounds_query.Query.Select filter) with
        | Bounds_query.Query.Select f -> f
        | _ -> filter)
    | true, None -> or_die (Error "--optimize needs --schema")
    | false, _ -> filter
  in
  let ids =
    with_jobs jobs (fun pool ->
        let snap = Directory.Snapshot.of_instance ?pool inst in
        Directory.Snapshot.search snap ~base scope filter)
  in
  Printf.printf "%d entries\n" (List.length ids);
  List.iter (fun id -> Printf.printf "%s\n" (Instance.dn inst id)) ids;
  0

let search_cmd =
  let schema_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "s"; "schema" ] ~docv:"SPEC" ~doc:"Schema spec (types; enables --optimize).")
  in
  let base =
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "base" ] ~docv:"DN" ~doc:"Base entry (whole forest if omitted).")
  in
  let scope =
    Arg.(
      value & opt string "sub"
      & info [ "scope" ] ~docv:"SCOPE" ~doc:"base, one, or sub (default).")
  in
  let filter =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILTER" ~doc:"RFC-2254-style filter.")
  in
  let optimize =
    Arg.(
      value & flag
      & info [ "optimize" ]
          ~doc:"Simplify the filter against the schema before evaluating.")
  in
  Cmd.v
    (Cmd.info "search" ~doc:"LDAP-style scoped search over an LDIF file.")
    Term.(
      const search $ schema_opt $ data_arg $ base $ scope $ filter $ optimize
      $ jobs_arg)

(* --- update ---------------------------------------------------------------- *)

(* LDIF change records (dn: + changetype add/delete) now parse in the
   codec library — shared with the network server's write path. *)
let parse_changes = Bounds_codec.Ldif.parse_changes

let write_out out_path dir =
  match out_path with
  | Some path ->
      write_file path (Bounds_codec.Ldif.to_string (Directory.instance dir));
      Printf.printf "updated directory written to %s\n" path
  | None -> ()

let update schema_path data_path ops_path out_path stats jobs store every =
  match store with
  | Some dir ->
      with_jobs jobs (fun pool ->
          let io = Bounds_store.Io.real ~root:dir () in
          let st =
            if Store.exists io then
              open_store ?pool ~auto_checkpoint:every dir
            else begin
              (* first update creates the store: -s seeds the schema, -d
                 (optional) the initial instance *)
              let schema =
                or_die (load_schema (required_arg "-s/--schema" schema_path))
              in
              let inst =
                match data_path with
                | Some p -> or_die (load_data ~typing:schema.Schema.typing p)
                | None -> Instance.empty
              in
              match Store.init ?pool ~auto_checkpoint:every io schema inst with
              | Ok st ->
                  Printf.printf "store: initialized %s (%d entries)\n" dir
                    (Instance.size inst);
                  st
              | Error e ->
                  or_die
                    (Error (Printf.sprintf "%s: %s" dir (Store.error_to_string e)))
            end
          in
          Fun.protect
            ~finally:(fun () -> Store.close st)
            (fun () ->
              let typing = (Store.schema st).Schema.typing in
              let inst = Directory.instance (Store.directory st) in
              let ops =
                or_die (parse_changes ~typing inst (read_file ops_path))
              in
              match Store.apply st ops with
              | Admission.Accepted _ ->
                  let d = Store.directory st in
                  Printf.printf
                    "transaction accepted: %d operation(s), %d entries now\n"
                    (List.length ops) (Directory.size d);
                  Printf.printf "logged at lsn %d (%d record(s), %d bytes)\n"
                    (Store.lsn st) (Store.wal_records st) (Store.wal_bytes st);
                  if stats then
                    Format.printf "%a@." Directory.pp_stats (Directory.stats d);
                  write_out out_path d;
                  0
              | Admission.Rejected { reason; _ } ->
                  Format.printf "transaction REJECTED: %a@." Monitor.pp_rejection
                    reason;
                  1))
  | None ->
      let schema = or_die (load_schema (required_arg "-s/--schema" schema_path)) in
      let inst =
        or_die
          (load_data ~typing:schema.Schema.typing
             (required_arg "-d/--data" data_path))
      in
      let ops =
        or_die (parse_changes ~typing:schema.Schema.typing inst (read_file ops_path))
      in
      let dir =
        match Directory.open_ ~jobs schema inst with
        | Ok d -> d
        | Error viols ->
            prerr_endline "error: the starting directory is already illegal:";
            List.iter (fun v -> prerr_endline ("  - " ^ Violation.to_string v)) viols;
            exit 2
      in
      Fun.protect
        ~finally:(fun () -> Directory.close dir)
        (fun () ->
          match Directory.apply dir ops with
          | dir, Admission.Accepted _ ->
              Printf.printf "transaction accepted: %d operation(s), %d entries now\n"
                (List.length ops) (Directory.size dir);
              if stats then
                Format.printf "%a@." Directory.pp_stats (Directory.stats dir);
              write_out out_path dir;
              0
          | _, Admission.Rejected { reason; _ } ->
              Format.printf "transaction REJECTED: %a@." Monitor.pp_rejection
                reason;
              1)

let update_cmd =
  let ops =
    Arg.(
      required
      & opt (some file) None
      & info [ "o"; "ops" ] ~docv:"CHANGES"
          ~doc:
            "LDIF change records: plain records (or changetype: add) insert; \
             changetype: delete removes.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"LDIF" ~doc:"Write the updated directory here.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print session statistics after the transaction (entries, memo \
             hit/miss and migration counts).")
  in
  let every =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "With --store: compact automatically once $(docv) records \
             accumulate in the log (0 = never).")
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:"Apply an update transaction under incremental legality checking.")
    Term.(
      const update $ schema_opt_arg $ data_opt_arg $ ops $ out $ stats
      $ jobs_arg $ store_arg $ every)

(* --- load (streaming bulk ingest) --------------------------------------- *)

let load_bulk ldif_path trust jobs dir =
  with_jobs jobs (fun pool ->
      let st = open_store ?pool dir in
      Fun.protect
        ~finally:(fun () -> Store.close st)
        (fun () ->
          let typing = (Store.schema st).Schema.typing in
          let text = read_file ldif_path in
          (* fresh ids for the streamed records; parents resolve among
             them (a dump's forest shape), new roots stay roots *)
          let base = Instance.fresh_id (Directory.instance (Store.directory st)) in
          let outcome =
            Store.load ~trust st (fun add ->
                match
                  Bounds_codec.Ldif.fold_entries ~typing
                    ~id_of:(fun k -> base + k)
                    (fun ~parent e () -> add ~parent e)
                    () text
                with
                | Ok () -> Ok ()
                | Error e ->
                    Error
                      (Printf.sprintf "%s: %s" ldif_path
                         (Bounds_codec.Ldif.error_to_string e)))
          in
          match outcome with
          | Ok n ->
              Printf.printf "loaded %d entries (%s); %d entries now\n" n
                (if trust then "trusted, admission skipped"
                 else "one admission check on the final instance")
                (Directory.size (Store.directory st));
              Printf.printf "checkpointed at lsn %d; log reset\n" (Store.lsn st);
              0
          | Error (Store.Illegal vs) ->
              Printf.printf
                "load REJECTED — final instance is illegal, store unchanged:\n";
              List.iter
                (fun v -> Printf.printf "  - %s\n" (Violation.to_string v))
                vs;
              1
          | Error e ->
              or_die (Error (Printf.sprintf "%s: %s" dir (Store.error_to_string e)))))

let load_cmd =
  let ldif =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"LDIF" ~doc:"Entries to load (parents before children).")
  in
  let store =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR" ~doc:"Durable store to load into.")
  in
  let trust =
    Arg.(
      value & flag
      & info [ "trust" ]
          ~doc:
            "Skip the final admission check — for dumps known legal \
             (checkpoints of this store, exports of a validated \
             directory).  Loading an illegal dump with $(b,--trust) \
             voids the store's legality invariant.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Bulk-load LDIF entries into a durable store: entries stream \
          through the batched trusted ingest path (no per-entry admission \
          or log records), then the final instance passes one admission \
          check (unless $(b,--trust)) and is committed as an atomic \
          checkpoint.")
    Term.(const load_bulk $ ldif $ trust $ jobs_arg $ store)

(* --- repair ------------------------------------------------------------------ *)

let repair schema_path data_path destructive out_path =
  let schema = or_die (load_schema schema_path) in
  let inst = or_die (load_data ~typing:schema.Schema.typing data_path) in
  let outcome = Repair.fix ~destructive schema inst in
  if outcome.Repair.actions = [] && outcome.Repair.remaining = [] then begin
    Printf.printf "%s: already legal, nothing to repair\n" data_path;
    0
  end
  else begin
    List.iter
      (fun act -> Format.printf "  %a@." Repair.pp_action act)
      outcome.Repair.actions;
    (match out_path with
    | Some path ->
        write_file path (Bounds_codec.Ldif.to_string outcome.Repair.instance);
        Printf.printf "repaired directory (%d entries) written to %s\n"
          (Instance.size outcome.Repair.instance)
          path
    | None -> ());
    match outcome.Repair.remaining with
    | [] ->
        Printf.printf "fully repaired: %d action(s)\n"
          (List.length outcome.Repair.actions);
        0
    | remaining ->
        Printf.printf "%d violation(s) remain%s:\n" (List.length remaining)
          (if destructive then "" else " (retry with --destructive?)");
        List.iter (fun v -> Printf.printf "  - %s\n" (Violation.to_string v)) remaining;
        1
  end

let repair_cmd =
  let destructive =
    Arg.(
      value & flag
      & info [ "destructive" ]
          ~doc:
            "Also delete offending subtrees when nothing gentler fixes a \
             violation.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"LDIF" ~doc:"Write the repaired directory here.")
  in
  Cmd.v
    (Cmd.info "repair" ~doc:"Repair an illegal directory with targeted edits.")
    Term.(const repair $ schema_arg $ data_arg $ destructive $ out)

(* --- fmt --------------------------------------------------------------------- *)

let fmt schema_path =
  let schema = or_die (load_schema schema_path) in
  print_string (Spec_printer.to_string schema);
  0

let fmt_cmd =
  Cmd.v
    (Cmd.info "fmt" ~doc:"Parse a schema spec and print its canonical form.")
    Term.(const fmt $ schema_arg)

(* --- tree-check (Section 6.3) --------------------------------------------------- *)

let tree_check schema_path data_path =
  let sschema =
    match Bounds_semi.Sschema.parse (read_file schema_path) with
    | Ok s -> s
    | Error m -> or_die (Error (Printf.sprintf "%s: %s" schema_path m))
  in
  match data_path with
  | Some path -> (
      let forest =
        match Bounds_semi.Ltree.parse_forest (read_file path) with
        | Ok f -> f
        | Error m -> or_die (Error (Printf.sprintf "%s: %s" path m))
      in
      match Bounds_semi.Sschema.check sschema forest with
      | [] ->
          Printf.printf "%s: legal (%d nodes)\n" path
            (List.fold_left (fun n t -> n + Bounds_semi.Ltree.size t) 0 forest);
          0
      | viols ->
          Printf.printf "%s: ILLEGAL — %d violation(s)\n" path (List.length viols);
          List.iter (fun v -> Printf.printf "  - %s\n" v) viols;
          1)
  | None -> (
      match Bounds_semi.Sschema.witness sschema with
      | Ok forest ->
          Printf.printf "consistent; a minimal legal document:\n";
          List.iter
            (fun t -> Printf.printf "  %s\n" (Bounds_semi.Ltree.to_string t))
            forest;
          0
      | Error m ->
          Printf.printf "%s\n" m;
          1)

let tree_check_cmd =
  let data =
    Arg.(
      value
      & opt (some file) None
      & info [ "d"; "data" ] ~docv:"TREES"
          ~doc:
            "Forest of s-expression trees, e.g. '(library (book (title)))'.  \
             Without it, the schema's consistency is decided instead.")
  in
  Cmd.v
    (Cmd.info "tree-check"
       ~doc:
         "Bounding-schemas for semistructured data (Section 6.3): validate a \
          labelled forest, or decide a tree-schema's consistency.")
    Term.(const tree_check $ schema_arg $ data)

(* --- profile ------------------------------------------------------------------ *)

let profile schema_path data_path =
  let schema = or_die (load_schema schema_path) in
  let inst = or_die (load_data ~typing:schema.Schema.typing data_path) in
  Format.printf "%a" Profile.pp (Profile.compute schema inst);
  0

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Schema-aware statistics: class populations, optional-attribute fill \
          rates, auxiliary-class adoption, forest shape.")
    Term.(const profile $ schema_arg $ data_arg)

(* --- generate ----------------------------------------------------------------- *)

let generate workload seed units persons out emit_schema =
  let schema, inst =
    match workload with
    | "white-pages" ->
        ( Bounds_workload.White_pages.schema,
          Bounds_workload.White_pages.generate ~seed ~units ~persons_per_unit:persons
            () )
    | "den" ->
        ( Bounds_workload.Den.schema,
          Bounds_workload.Den.generate ~seed ~sites:(max 1 (units / 10))
            ~devices_per_site:4 ~interfaces_per_device:2 ~policies:persons () )
    | other -> or_die (Error (Printf.sprintf "unknown workload %S" other))
  in
  (match emit_schema with
  | Some path -> write_file path (Spec_printer.to_string schema)
  | None -> ());
  let ldif = Bounds_codec.Ldif.to_string inst in
  (match out with Some path -> write_file path ldif | None -> print_string ldif);
  Printf.eprintf "generated %d entries\n" (Instance.size inst);
  0

let generate_cmd =
  let workload =
    Arg.(
      value
      & opt string "white-pages"
      & info [ "workload" ] ~docv:"NAME" ~doc:"white-pages or den.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let units =
    Arg.(value & opt int 20 & info [ "units" ] ~docv:"N" ~doc:"Organizational units.")
  in
  let persons =
    Arg.(
      value & opt int 5
      & info [ "persons" ] ~docv:"N" ~doc:"Persons per unit (policies for den).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"LDIF" ~doc:"Output file (stdout by default).")
  in
  let emit_schema =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-schema" ] ~docv:"SPEC" ~doc:"Also write the matching schema spec.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic legal directory as LDIF.")
    Term.(const generate $ workload $ seed $ units $ persons $ out $ emit_schema)

(* --- fuzz --------------------------------------------------------------------- *)

let fuzz list oracle_names seed budget jobs corpus max_failures =
  let open Bounds_diff in
  if list then begin
    List.iter
      (fun (o : Oracle.t) -> Printf.printf "%-24s %s\n" o.name o.doc)
      Oracle.all;
    0
  end
  else begin
    let oracles = match oracle_names with [] -> None | l -> Some l in
    let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
    let log line = Printf.eprintf "%s\n%!" line in
    let reports =
      or_die (Fuzz.run ~jobs ?oracles ~max_failures ~log ~budget ~seed ())
    in
    (match corpus with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    List.iter
      (fun (r : Fuzz.report) ->
        if r.failures = [] then
          Printf.printf "%-24s %6d cases  ok\n" r.oracle r.budget
        else begin
          Printf.printf "%-24s %6d cases  %d counterexample(s)\n" r.oracle
            r.budget
            (List.length r.failures);
          List.iter
            (fun (f : Fuzz.failure) ->
              Printf.printf "  %s\n" f.message;
              Format.printf "    @[<v>%a@]@." Case.pp f.case;
              match corpus with
              | Some dir ->
                  Printf.printf "    saved %s\n" (Fuzz.save_case ~dir f.case)
              | None -> ())
            r.failures
        end)
      reports;
    if Fuzz.total_failures reports = 0 then begin
      Printf.printf "all oracles agree\n";
      0
    end
    else 1
  end

let fuzz_cmd =
  let list =
    Arg.(value & flag & info [ "list" ] ~doc:"List the registered oracles and exit.")
  in
  let oracle =
    Arg.(
      value
      & opt_all string []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:"Fuzz only this oracle (repeatable; default: all).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let budget =
    Arg.(
      value & opt int 500
      & info [ "budget" ] ~docv:"N" ~doc:"Cases to generate per oracle.")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Save shrunk counterexamples to $(docv) as regression cases.")
  in
  let max_failures =
    Arg.(
      value & opt int 3
      & info [ "max-failures" ] ~docv:"N"
          ~doc:"Stop shrinking after $(docv) distinct counterexamples per oracle.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: run pairs of independently-implemented \
          engines (codec round-trips, indexed vs naive evaluation, \
          incremental vs full legality, parallel vs sequential) on random \
          adversarial inputs, and shrink any disagreement to a minimal \
          counterexample.")
    Term.(
      const fuzz $ list $ oracle $ seed $ budget $ jobs_arg $ corpus
      $ max_failures)

(* --- log / checkpoint (durable stores) ---------------------------------- *)

let store_pos_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Store directory.")

(* Describe the store as it sits on disk — checkpoint header, every
   readable log record, and where (if anywhere) the tail is damaged.
   Read-only: unlike open_/recovery it neither replays nor truncates. *)
let log_ dir =
  let io = store_io dir in
  if not (Store.exists io) then
    or_die (Error (Printf.sprintf "%s: not a store (missing %s)" dir Store.schema_file));
  let ckpt_ok =
    match Bounds_store.Checkpoint.read_meta io Store.checkpoint_file with
    | Ok m ->
        Printf.printf "checkpoint: lsn %d, %d entries\n" m.Bounds_store.Checkpoint.lsn
          m.Bounds_store.Checkpoint.entries;
        Printf.printf "stats: applied %d rejected %d queries %d\n"
          m.Bounds_store.Checkpoint.applied m.Bounds_store.Checkpoint.rejected
          m.Bounds_store.Checkpoint.queries;
        true
    | Error e ->
        Printf.printf "checkpoint: unreadable (%s)\n" e;
        false
  in
  let delta = Bounds_store.Wal.scan io Store.delta_file in
  let segments =
    List.length
      (List.filter
         (fun (r : Bounds_store.Wal.record) -> r.lsn = 0 && r.ops = [])
         delta.Bounds_store.Wal.records)
  in
  let delta_ok =
    if segments > 0 || delta.Bounds_store.Wal.end_offset > 0
       || delta.Bounds_store.Wal.truncated <> None
    then begin
      Printf.printf "delta: %d segment(s), %d record(s), %d bytes\n" segments
        (List.length delta.Bounds_store.Wal.records - segments)
        delta.Bounds_store.Wal.end_offset;
      match delta.Bounds_store.Wal.truncated with
      | None -> true
      | Some t ->
          Printf.printf "delta tail: damaged at byte %d (%s)\n"
            t.Bounds_store.Wal.offset t.Bounds_store.Wal.reason;
          false
    end
    else true
  in
  let scan = Bounds_store.Wal.scan io Store.wal_file in
  Printf.printf "log: %d record(s), %d bytes\n"
    (List.length scan.Bounds_store.Wal.records)
    scan.Bounds_store.Wal.end_offset;
  List.iter
    (fun (r : Bounds_store.Wal.record) ->
      Printf.printf "  lsn %d: %d op(s) at byte %d\n" r.lsn (List.length r.ops)
        r.offset)
    scan.Bounds_store.Wal.records;
  match scan.Bounds_store.Wal.truncated with
  | None ->
      Printf.printf "tail: clean\n";
      if ckpt_ok && delta_ok then 0 else 1
  | Some t ->
      Printf.printf "tail: damaged at byte %d (%s)\n" t.Bounds_store.Wal.offset
        t.Bounds_store.Wal.reason;
      1

let log_cmd =
  Cmd.v
    (Cmd.info "log"
       ~doc:
         "Describe a durable store: checkpoint header, log records, tail \
          health.  Exits 1 if the checkpoint is unreadable or the tail is \
          damaged (recovery would truncate it).")
    Term.(const log_ $ store_pos_arg)

let checkpoint_verb dir full jobs =
  with_jobs jobs (fun pool ->
      let st = open_store ?pool dir in
      Fun.protect
        ~finally:(fun () -> Store.close st)
        (fun () ->
          Store.checkpoint ~full st;
          if Store.delta_segments st = 0 then
            Printf.printf
              "checkpointed at lsn %d (%d entries); chain collapsed, log reset\n"
              (Store.lsn st)
              (Directory.size (Store.directory st))
          else
            Printf.printf
              "delta checkpoint at lsn %d (%d segment(s), %d bytes); log reset\n"
              (Store.lsn st) (Store.delta_segments st) (Store.delta_bytes st);
          0))

let full_arg =
  Arg.(
    value & flag
    & info [ "full" ]
        ~doc:
          "Collapse: rewrite the whole snapshot and drop the delta chain \
           instead of folding the log into an O(delta) segment.")

let checkpoint_cmd =
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Compact a durable store: recover it, fold the write-ahead log into \
          the delta-checkpoint chain (or rewrite the full snapshot with \
          $(b,--full) or past the chain threshold), and reset the log.")
    Term.(const checkpoint_verb $ store_pos_arg $ full_arg $ jobs_arg)

(* Recover the store and report the live session's counters, including
   the hash-cons pool stats the recovery populated — at directory scale
   the interesting figure is how many duplicate strings the load would
   otherwise have held. *)
let stats_verb dir jobs =
  with_jobs jobs (fun pool ->
      let st = open_store ?pool dir in
      Fun.protect
        ~finally:(fun () -> Store.close st)
        (fun () ->
          Format.printf "%a@." Directory.pp_stats
            (Directory.stats (Store.directory st));
          0))

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Recover a durable store and print session counters plus intern \
          pool statistics (distinct strings, hash-cons hits, heap bytes \
          saved).")
    Term.(const stats_verb $ store_pos_arg $ jobs_arg)

(* --- serve / client / traffic (network) --------------------------------- *)

module Server = Bounds_net.Server
module Client = Bounds_net.Client
module Proto = Bounds_net.Proto
module Replica = Bounds_net.Replica

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind or connect to.")

let port_opt_arg ~doc =
  Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc)

let port_req_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")

let serve dir host port batch_max max_clients replicate jobs =
  with_jobs jobs (fun pool ->
      let st = open_store ?pool dir in
      Fun.protect
        ~finally:(fun () -> Store.close st)
        (fun () ->
          let srv =
            Server.start ~host ~port ~batch_max ~max_clients ~replicate st
          in
          let stop _ = Server.stop srv in
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
          Printf.printf "listening on %s:%d (store %s, %d entries)\n%!" host
            (Server.port srv) dir
            (Directory.size (Store.directory st));
          Server.wait srv;
          print_endline (Server.stats_text (Server.stats srv));
          0))

let serve_cmd =
  let batch_max =
    Arg.(
      value & opt int 64
      & info [ "batch-max" ] ~docv:"N"
          ~doc:"Most write transactions per group commit (default 64).")
  in
  let max_clients =
    Arg.(
      value & opt int 64
      & info [ "max-clients" ] ~docv:"N"
          ~doc:"Most concurrent connections (default 64).")
  in
  let replicate =
    Arg.(
      value & flag
      & info [ "replicate" ]
          ~doc:
            "Accept replica subscriptions and ship every acknowledged WAL \
             record (plus checkpoint markers) to them as it commits.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the directory server over a durable store: concurrent \
          snapshot-isolated readers, single-writer group commit (one shared \
          fsync per batch).  Stops on SIGINT/SIGTERM or a client's shutdown \
          request.")
    Term.(
      const serve $ store_pos_arg $ host_arg
      $ port_opt_arg ~doc:"Port to listen on (0 = ephemeral, printed at start)."
      $ batch_max $ max_clients $ replicate $ jobs_arg)

let replica_verb dir from host port max_clients =
  let primary_host, primary_port =
    match String.rindex_opt from ':' with
    | None ->
        or_die (Error (Printf.sprintf "--from %S: expected HOST:PORT" from))
    | Some i -> (
        let h = String.sub from 0 i in
        let p = String.sub from (i + 1) (String.length from - i - 1) in
        match int_of_string_opt p with
        | Some p when p > 0 -> ((if h = "" then "127.0.0.1" else h), p)
        | _ ->
            or_die
              (Error (Printf.sprintf "--from %S: bad port %S" from p)))
  in
  (* A fresh replica bootstraps into an empty directory — create it
     rather than demanding an existing store like the other verbs. *)
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  if not (Sys.is_directory dir) then
    or_die (Error (Printf.sprintf "%s: not a directory" dir));
  let io = Bounds_store.Io.real ~root:dir () in
  let rep =
    Replica.start ~host ~port ~max_clients ~primary_host ~primary_port io
  in
  let stop _ = Replica.stop rep in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Printf.printf "replica listening on %s:%d (store %s, primary %s:%d)\n%!"
    host (Replica.port rep) dir primary_host primary_port;
  Replica.wait rep;
  print_endline (Replica.stats_text (Replica.stats rep));
  0

let replica_cmd =
  let from =
    Arg.(
      required
      & opt (some string) None
      & info [ "from" ] ~docv:"HOST:PORT"
          ~doc:"Primary to subscribe to (its serve $(b,--replicate) feed).")
  in
  let store =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Replica store directory; created and bootstrapped from a \
             shipped snapshot if absent, recovered and served immediately \
             if present.")
  in
  let max_clients =
    Arg.(
      value & opt int 16
      & info [ "max-clients" ] ~docv:"N"
          ~doc:"Most concurrent read connections (default 16).")
  in
  Cmd.v
    (Cmd.info "replica"
       ~doc:
         "Run a read-only replica fed by WAL shipment from a primary \
          started with $(b,--replicate): bootstraps from a shipped \
          snapshot, applies the stream through trusted replay, serves \
          lock-free reads from its own snapshots, and reconnects with \
          exponential backoff resuming from its durable lsn.")
    Term.(
      const replica_verb $ store $ from $ host_arg
      $ port_opt_arg
          ~doc:"Read-side port to listen on (0 = ephemeral, printed at start)."
      $ max_clients)

let client_verb host port verb operand base scope =
  let req =
    match verb with
    | "ping" -> Proto.Ping
    | "stats" -> Proto.Stats
    | "checkpoint" -> Proto.Checkpoint
    | "shutdown" -> Proto.Shutdown
    | "query" -> (
        match operand with
        | Some e -> Proto.Query e
        | None -> or_die (Error "query needs an expression argument"))
    | "search" -> (
        match operand with
        | Some f -> Proto.Search { base; scope; filter = f }
        | None -> or_die (Error "search needs a filter argument"))
    | "apply" -> (
        match operand with
        | Some path ->
            let text =
              if path = "-" then In_channel.input_all stdin
              else read_file path
            in
            Proto.Apply text
        | None -> or_die (Error "apply needs an LDIF change file (or - for stdin)"))
    | v -> or_die (Error (Printf.sprintf "unknown request verb %S" v))
  in
  match Client.connect ~host ~port ~retries:20 () with
  | Error e -> or_die (Error e)
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.request c req with
          | Ok (Proto.Reply body) ->
              if body <> "" then print_endline body;
              0
          | Ok (Proto.Failed msg) ->
              prerr_endline ("server: " ^ msg);
              1
          | Error e -> or_die (Error e))

let client_cmd =
  let verb =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"VERB"
          ~doc:"ping, query, search, apply, stats, checkpoint, or shutdown.")
  in
  let operand =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"ARG"
          ~doc:
            "Query expression, search filter, or LDIF change file ($(b,-) \
             for stdin), depending on the verb.")
  in
  let base =
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "base" ] ~docv:"DN"
          ~doc:"Search base (whole forest if omitted).")
  in
  let scope =
    Arg.(
      value & opt string "sub"
      & info [ "scope" ] ~docv:"SCOPE" ~doc:"base, one, or sub (default).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running directory server and print the reply.")
    Term.(
      const client_verb $ host_arg $ port_req_arg $ verb $ operand $ base
      $ scope)

let traffic_verb host port clients requests write_ratio seed tag =
  match
    Bounds_workload.Traffic.run ~host ~port ~clients ~requests ~write_ratio
      ~seed ~tag ()
  with
  | Error e -> or_die (Error e)
  | Ok report ->
      print_endline (Bounds_workload.Traffic.report_text report);
      if report.Bounds_workload.Traffic.requests > 0 then 0 else 1

let traffic_cmd =
  let clients =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let requests =
    Arg.(
      value & opt int 100
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let write_ratio =
    Arg.(
      value & opt float 0.2
      & info [ "write-ratio" ] ~docv:"R"
          ~doc:"Fraction of requests that are write transactions.")
  in
  let seed =
    Arg.(value & opt int 17 & info [ "seed" ] ~docv:"N" ~doc:"Stream seed.")
  in
  let tag =
    Arg.(
      value & opt string "t"
      & info [ "tag" ] ~docv:"TAG"
          ~doc:
            "Uid prefix for generated writes (vary it between runs against \
             a persistent store: uid is a key).")
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:
         "Drive mixed read/write traffic at a running directory server and \
          report throughput and latency.")
    Term.(
      const traffic_verb $ host_arg $ port_req_arg $ clients $ requests
      $ write_ratio $ seed $ tag)

let main =
  Cmd.group
    (Cmd.info "ldapschema" ~version:"1.0.0"
       ~doc:"Bounding-schemas for LDAP directories (EDBT 2000), as a tool.")
    [
      validate_cmd;
      consistent_cmd;
      query_cmd;
      search_cmd;
      update_cmd;
      load_cmd;
      repair_cmd;
      profile_cmd;
      tree_check_cmd;
      fmt_cmd;
      generate_cmd;
      fuzz_cmd;
      log_cmd;
      checkpoint_cmd;
      stats_cmd;
      serve_cmd;
      replica_cmd;
      client_cmd;
      traffic_cmd;
    ]

let () = exit (Cmd.eval' main)
