(* Benchmark harness: one experiment per complexity claim of the paper
   (see DESIGN.md, per-experiment index).  Each experiment is a Bechamel
   test (indexed by the swept parameter) whose per-point run-time estimate
   is printed as the series the paper's theorems predict the shape of.

   Run with:  dune exec bench/main.exe            (all experiments)
              dune exec bench/main.exe -- T31 Q9  (a subset) *)

open Bechamel
open Bounds_model
open Bounds_core
open Bounds_query
module WP = Bounds_workload.White_pages
module Store = Bounds_store.Store
module Sio = Bounds_store.Io

(* --- measurement ------------------------------------------------------- *)

let run_test ?(quota = 0.4) test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ~stabilize:false
      ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let est =
        match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> Float.nan
      in
      (name, est) :: acc)
    res []

(* ns/run for the point named "<name>:<arg>" *)
let point results name arg =
  match List.assoc_opt (Printf.sprintf "%s:%d" name arg) results with
  | Some ns -> ns
  | None -> Float.nan

let pp_time ns =
  if Float.is_nan ns then "      n/a"
  else if ns >= 1e9 then Printf.sprintf "%7.2f s " (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%7.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%7.2f us" (ns /. 1e3)
  else Printf.sprintf "%7.1f ns" ns

let pp_ratio r = if Float.is_nan r then "    -" else Printf.sprintf "%5.2f" r
let header title claim = Printf.printf "\n== %s ==\n%s\n" title claim

(* growth factors between successive points of a doubling series *)
let growth series =
  let rec go = function
    | a :: (b :: _ as rest) -> (b /. a) :: go rest
    | _ -> []
  in
  go series

let avg = function
  | [] -> Float.nan
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(* Peak major-heap footprint of the process so far, in bytes.
   [top_heap_words] is a monotone high-water mark, so a reading taken
   when an experiment writes its JSON covers everything it allocated;
   every BENCH_*.json carries it so the memory trajectory is tracked
   across PRs alongside the time series. *)
let peak_heap_bytes () =
  (Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8)

let pp_bytes b =
  if b >= 1 lsl 30 then
    Printf.sprintf "%7.2f GiB" (float_of_int b /. float_of_int (1 lsl 30))
  else if b >= 1 lsl 20 then
    Printf.sprintf "%7.1f MiB" (float_of_int b /. float_of_int (1 lsl 20))
  else Printf.sprintf "%7d KiB" (b / 1024)

(* --- T31: legality testing, query-based vs naive  ----------------------- *)

let exp_t31 () =
  header "T31  legality testing (Theorem 3.1)"
    "claim: the query-reduction checker is linear in |D|; the pairwise\n\
     strawman is quadratic - same verdicts, diverging cost.";
  let sizes_fast = [ 250; 500; 1000; 2000; 4000; 8000 ] in
  let sizes_naive = [ 250; 500; 1000; 2000 ] in
  let instance_of n = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
  let fast =
    Test.make_indexed ~name:"fast" ~args:sizes_fast (fun n ->
        Staged.stage
          (let inst = instance_of n in
           fun () -> ignore (Legality.check WP.schema inst)))
  in
  let naive =
    Test.make_indexed ~name:"naive" ~args:sizes_naive (fun n ->
        Staged.stage
          (let inst = instance_of n in
           fun () -> ignore (Naive_legality.check WP.schema inst)))
  in
  let r = run_test (Test.make_grouped ~name:"t31" [ fast; naive ]) in
  Printf.printf "  %8s  %12s  %14s  %11s\n" "|D|" "query-based" "naive-pairwise"
    "naive/fast";
  List.iter
    (fun n ->
      let f = point r "t31/fast" n and s = point r "t31/naive" n in
      Printf.printf "  %8d  %s    %s     %s\n" n (pp_time f) (pp_time s)
        (pp_ratio (s /. f)))
    sizes_fast;
  let ffast = growth (List.map (point r "t31/fast") sizes_fast) in
  let fnaive = growth (List.map (point r "t31/naive") sizes_naive) in
  Printf.printf
    "  shape: per-doubling growth - fast %.2fx (linear=2), naive %.2fx (quadratic=4)\n"
    (avg ffast) (avg fnaive)

(* --- T42: incremental vs full rechecking under updates ------------------- *)

let exp_t42 () =
  header "T42  incremental legality under updates (Theorem 4.2, Figure 5)"
    "claim: checking one small insertion/deletion incrementally costs\n\
     O(|delta| + frontier), independent of |D|; full recheck grows with |D|.";
  let sizes = [ 500; 1000; 2000; 4000; 8000 ] in
  let setup n =
    let base = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
    let delta = WP.fresh_person base ~seed:(n + 1) in
    let unit =
      Bounds_model.Instance.fold
        (fun e acc ->
          if Entry.has_class e (Oclass.of_string "orgunit") then Some (Entry.id e)
          else acc)
        base None
    in
    (base, delta, Option.get unit)
  in
  let inc =
    Test.make_indexed ~name:"incremental" ~args:sizes (fun n ->
        Staged.stage
          (let base, delta, unit = setup n in
           fun () ->
             ignore
               (Result.get_ok
                  (Incremental.check_insert WP.schema ~base ~parent:(Some unit)
                     ~delta))))
  in
  let full =
    Test.make_indexed ~name:"full" ~args:sizes (fun n ->
        Staged.stage
          (let base, delta, unit = setup n in
           let updated =
             Result.get_ok (Bounds_model.Instance.graft ~parent:(Some unit) delta base)
           in
           fun () -> ignore (Legality.check ~extensions:false WP.schema updated)))
  in
  let del =
    Test.make_indexed ~name:"inc-delete" ~args:sizes (fun n ->
        Staged.stage
          (let base, _, _ = setup n in
           let victim =
             Bounds_model.Instance.fold
               (fun e acc ->
                 if
                   Entry.has_class e (Oclass.of_string "person")
                   && Bounds_model.Instance.is_leaf base (Entry.id e)
                 then Some (Entry.id e)
                 else acc)
               base None
             |> Option.get
           in
           fun () ->
             ignore
               (Result.get_ok (Incremental.check_delete WP.schema ~base ~root:victim))))
  in
  let r = run_test (Test.make_grouped ~name:"t42" [ inc; full; del ]) in
  Printf.printf "  %8s  %13s  %13s  %13s  %11s\n" "|D|" "inc. insert" "inc. delete"
    "full recheck" "full/inc";
  List.iter
    (fun n ->
      let i = point r "t42/incremental" n
      and d = point r "t42/inc-delete" n
      and f = point r "t42/full" n in
      Printf.printf "  %8d  %s     %s     %s    %s\n" n (pp_time i) (pp_time d)
        (pp_time f) (pp_ratio (f /. i)))
    sizes;
  Printf.printf
    "  shape: per-doubling growth - incremental %.2fx (flat=1), full %.2fx (linear=2)\n"
    (avg (growth (List.map (point r "t42/incremental") sizes)))
    (avg (growth (List.map (point r "t42/full") sizes)))

(* --- T52: consistency checking is schema-polynomial ---------------------- *)

let exp_t52 () =
  header "T52  consistency checking (Theorem 5.2)"
    "claim: saturation of the inference system is polynomial in the schema\n\
     size (and needs no instance at all).";
  let sizes = [ 8; 16; 32; 64; 128 ] in
  let schema_of n =
    Bounds_workload.Gen.random_schema ~seed:n ~n_classes:n ~n_req:n ~n_forb:(n / 2)
      ~n_required_classes:(max 1 (n / 8))
  in
  let sat =
    Test.make_indexed ~name:"saturate" ~args:sizes (fun n ->
        Staged.stage
          (let schema = schema_of n in
           fun () -> ignore (Inference.saturate schema)))
  in
  let r = run_test (Test.make_grouped ~name:"t52" [ sat ]) in
  Printf.printf "  %8s  %12s  %8s  %9s  %13s\n" "classes" "saturate" "passes"
    "elements" "verdict";
  List.iter
    (fun n ->
      let schema = schema_of n in
      let inf = Inference.saturate schema in
      let passes, derived = Inference.stats inf in
      Printf.printf "  %8d  %s    %8d  %9d  %13s\n" n
        (pp_time (point r "t52/saturate" n))
        passes derived
        (if Inference.inconsistent inf then "inconsistent" else "consistent"))
    sizes;
  let g = avg (growth (List.map (point r "t52/saturate") sizes)) in
  Printf.printf
    "  shape: per-doubling growth %.2fx => fitted exponent ~%.1f (polynomial, as\n\
    \  claimed: the derivable-element universe alone grows quadratically in the\n\
    \  class count, and each saturation pass joins over it)\n"
    g
    (Float.log g /. Float.log 2.)

(* --- Q9: hierarchical query evaluation is O(|Q| * |D|) -------------------- *)

let exp_q9 () =
  header "Q9   hierarchical query evaluation (claim inherited from [9])"
    "claim: one pass per operator - linear in |D| for fixed Q, linear in\n\
     |Q| for fixed D; the pairwise reference evaluator is quadratic.";
  let q1 =
    Query.Minus
      ( Query.select_class (Oclass.of_string "orggroup"),
        Query.Chi
          ( Query.Descendant,
            Query.select_class (Oclass.of_string "orggroup"),
            Query.select_class (Oclass.of_string "person") ) )
  in
  let sizes = [ 1000; 2000; 4000; 8000; 16000 ] in
  let dsweep =
    Test.make_indexed ~name:"eval-by-D" ~args:sizes (fun n ->
        Staged.stage
          (let inst = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
           let ix = Index.create inst in
           fun () -> ignore (Eval.eval ix q1)))
  in
  (* |Q| sweep: chain of chi-ancestor operators *)
  let qsizes = [ 1; 2; 4; 8; 16 ] in
  let deep_query k =
    let base = Query.select_class (Oclass.of_string "person") in
    let rec chain k q =
      if k = 0 then q
      else
        chain (k - 1)
          (Query.Chi
             (Query.Ancestor, q, Query.select_class (Oclass.of_string "orggroup")))
    in
    chain k base
  in
  let qsweep =
    Test.make_indexed ~name:"eval-by-Q" ~args:qsizes (fun k ->
        Staged.stage
          (let inst = WP.generate ~seed:9 ~units:160 ~persons_per_unit:20 () in
           let ix = Index.create inst in
           let q = deep_query k in
           fun () -> ignore (Eval.eval ix q)))
  in
  let nsizes = [ 250; 500; 1000; 2000 ] in
  let naive =
    Test.make_indexed ~name:"naive-eval" ~args:nsizes (fun n ->
        Staged.stage
          (let inst = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
           fun () -> ignore (Naive_eval.eval inst q1)))
  in
  let fast_small =
    Test.make_indexed ~name:"fast-eval" ~args:nsizes (fun n ->
        Staged.stage
          (let inst = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
           let ix = Index.create inst in
           fun () -> ignore (Eval.eval ix q1)))
  in
  let r =
    run_test (Test.make_grouped ~name:"q9" [ dsweep; qsweep; naive; fast_small ])
  in
  Printf.printf "  by |D| (fixed Q1):\n  %8s  %12s\n" "|D|" "eval";
  List.iter
    (fun n -> Printf.printf "  %8d  %s\n" n (pp_time (point r "q9/eval-by-D" n)))
    sizes;
  Printf.printf "  by |Q| (chi-chain, |D|=3367):\n  %8s  %12s\n" "depth" "eval";
  List.iter
    (fun k -> Printf.printf "  %8d  %s\n" k (pp_time (point r "q9/eval-by-Q" k)))
    qsizes;
  Printf.printf "  linear vs pairwise reference:\n  %8s  %12s  %12s  %8s\n" "|D|"
    "linear" "pairwise" "ratio";
  List.iter
    (fun n ->
      let f = point r "q9/fast-eval" n and s = point r "q9/naive-eval" n in
      Printf.printf "  %8d  %s    %s  %s\n" n (pp_time f) (pp_time s)
        (pp_ratio (s /. f)))
    nsizes;
  Printf.printf
    "  shape: per-doubling growth - by-D %.2fx (linear=2), by-Q %.2fx (linear=2), \
     pairwise %.2fx (quadratic=4)\n"
    (avg (growth (List.map (point r "q9/eval-by-D") sizes)))
    (avg (growth (List.map (point r "q9/eval-by-Q") qsizes)))
    (avg (growth (List.map (point r "q9/naive-eval") nsizes)))

(* --- C31: content checking is per-entry --------------------------------- *)

let exp_c31 () =
  header "C31  content-schema checking (Section 3.1)"
    "claim: content legality is a per-entry test; total time is linear in\n\
     |D| with a constant per-entry cost.";
  let sizes = [ 1000; 2000; 4000; 8000 ] in
  let t =
    Test.make_indexed ~name:"content" ~args:sizes (fun n ->
        Staged.stage
          (let inst = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
           fun () -> ignore (Content_legality.check WP.schema inst)))
  in
  let r = run_test (Test.make_grouped ~name:"c31" [ t ]) in
  Printf.printf "  %8s  %12s  %14s\n" "|D|" "total" "per entry";
  List.iter
    (fun n ->
      let total = point r "c31/content" n in
      Printf.printf "  %8d  %s   %s\n" n (pp_time total)
        (pp_time (total /. float_of_int n)))
    sizes;
  Printf.printf "  shape: per-doubling growth %.2fx (linear=2)\n"
    (avg (growth (List.map (point r "c31/content") sizes)))

(* --- A1: value-index ablation -------------------------------------------- *)

let exp_a1 () =
  header "A1   value-index ablation (engineering, cf. the paper's Section 7 outlook)"
    "claim: a secondary (attribute,value) index answers the atomic\n\
     (objectClass=c) selections of the Figure-4 queries below the scan cost.";
  let sizes = [ 2000; 4000; 8000; 16000 ] in
  let q = Query.select_class (Oclass.of_string "researcher") in
  let scan =
    Test.make_indexed ~name:"scan" ~args:sizes (fun n ->
        Staged.stage
          (let inst = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
           let ix = Index.create inst in
           fun () -> ignore (Eval.eval ix q)))
  in
  let indexed =
    Test.make_indexed ~name:"vindex" ~args:sizes (fun n ->
        Staged.stage
          (let inst = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
           let ix = Index.create inst in
           let vx = Vindex.create ix in
           fun () -> ignore (Eval.eval ~vindex:vx ix q)))
  in
  let r = run_test (Test.make_grouped ~name:"a1" [ scan; indexed ]) in
  Printf.printf "  %8s  %12s  %12s  %8s\n" "|D|" "scan" "vindex" "speedup";
  List.iter
    (fun n ->
      let s = point r "a1/scan" n and v = point r "a1/vindex" n in
      Printf.printf "  %8d  %s    %s  %s\n" n (pp_time s) (pp_time v)
        (pp_ratio (s /. v)))
    sizes

(* --- A2: monitor throughput ----------------------------------------------- *)

let exp_a2 () =
  header "A2   monitor throughput (Section 4 in practice)"
    "claim: a guarded directory absorbs single-entry transactions at a\n\
     rate independent of directory size.";
  let sizes = [ 1000; 4000; 16000 ] in
  let t =
    Test.make_indexed ~name:"insert-delete" ~args:sizes (fun n ->
        Staged.stage
          (let base = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
           let m = Result.get_ok (Monitor.create WP.schema base) in
           let unit =
             Bounds_model.Instance.fold
               (fun e acc ->
                 if Entry.has_class e (Oclass.of_string "orgunit") then
                   Some (Entry.id e)
                 else acc)
               base None
             |> Option.get
           in
           let counter = ref 0 in
           fun () ->
             incr counter;
             let id = 1_000_000 + !counter in
             let delta =
               Bounds_model.Instance.add_root_exn
                 (Entry.make ~id
                    ~rdn:(Printf.sprintf "uid=bench%d" id)
                    ~classes:(Oclass.set_of_list [ "person"; "top" ])
                    [
                      ( Attr.of_string "uid",
                        Value.String (Printf.sprintf "bench%d" id) );
                      (Attr.of_string "name", Value.String "bench");
                    ])
                 Bounds_model.Instance.empty
             in
             let m', _ =
               Result.get_ok (Monitor.insert_subtree ~parent:(Some unit) delta m)
             in
             ignore (Result.get_ok (Monitor.delete_subtree id m'))))
  in
  let r = run_test (Test.make_grouped ~name:"a2" [ t ]) in
  Printf.printf "  %8s  %16s  %14s\n" "|D|" "insert+delete" "transactions/s";
  List.iter
    (fun n ->
      let ns = point r "a2/insert-delete" n in
      Printf.printf "  %8d  %s      %14.0f\n" n (pp_time ns) (1e9 /. ns))
    sizes

(* --- A3: schema-aware query simplification --------------------------------- *)

let exp_a3 () =
  header "A3   schema-aware query simplification (Section 7 outlook)"
    "claim: saturated schema knowledge lets legality-style queries be\n\
     answered statically - the Figure-4 queries of the schema's own\n\
     elements simplify to the empty query without touching the instance.";
  let inf = Inference.saturate WP.schema in
  let obligations = Translate.all WP.schema.Schema.structure in
  let queries =
    List.filter_map
      (fun (_, q, expect) ->
        match expect with Translate.Must_be_empty -> Some q | _ -> None)
      obligations
  in
  let sizes = [ 2000; 8000 ] in
  let plain =
    Test.make_indexed ~name:"evaluate" ~args:sizes (fun n ->
        Staged.stage
          (let inst = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
           let ix = Index.create inst in
           fun () -> List.iter (fun q -> ignore (Eval.eval ix q)) queries))
  in
  let optimized =
    Test.make_indexed ~name:"simplify+evaluate" ~args:sizes (fun n ->
        Staged.stage
          (let inst = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
           let ix = Index.create inst in
           let qs = List.map (Optimize.simplify inf) queries in
           fun () -> List.iter (fun q -> ignore (Eval.eval ix q)) qs))
  in
  let r = run_test (Test.make_grouped ~name:"a3" [ plain; optimized ]) in
  let vanished =
    List.length
      (List.filter (fun q -> Optimize.is_empty_query (Optimize.simplify inf q)) queries)
  in
  Printf.printf "  %d of %d legality queries simplify to the empty query statically\n"
    vanished (List.length queries);
  Printf.printf "  %8s  %14s  %18s  %8s\n" "|D|" "evaluate" "simplify+evaluate"
    "speedup";
  List.iter
    (fun n ->
      let p = point r "a3/evaluate" n and o = point r "a3/simplify+evaluate" n in
      Printf.printf "  %8d  %s      %s     %s\n" n (pp_time p) (pp_time o)
        (pp_ratio (p /. o)))
    sizes

(* --- P1: domain-pool parallel legality engine ------------------------------ *)

(* Sweeps the domain count at fixed |D| and |D| at a fixed domain count,
   always asserting verdict-equality against the sequential engine before
   timing anything.  With [json] the per-point estimates are written to
   BENCH_legality.json so the perf trajectory is machine-readable across
   PRs. *)
let exp_p1 ~smoke ~json () =
  header "P1   domain-pool parallel legality engine (Theorem 3.1, multicore)"
    "claim: the Figure-4 reduction stays linear in |D| while the constant\n\
     divides by the worker count - same verdicts bit-for-bit, wall-clock\n\
     falling with domains (hardware permitting).";
  let module Pool = Bounds_par.Pool in
  let quota = if smoke then 0.05 else 0.4 in
  let n_fixed = if smoke then 400 else 8000 in
  let sizes = if smoke then [ 200; 400 ] else [ 2000; 4000; 8000; 16000 ] in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let fixed_domains = 4 in
  let instance_of n = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
  let pools =
    List.filter_map
      (fun d -> if d = 1 then None else Some (d, Pool.create ~domains:d ()))
      domain_counts
  in
  let pool_of d = if d = 1 then None else Some (List.assoc d pools) in
  (* verdict equality: every pool size must reproduce the sequential
     violation list exactly (here: on a legal instance and on one with
     seeded violations) *)
  let damaged =
    let inst = instance_of (min n_fixed 1000) in
    Bounds_model.Instance.add_root_exn
      (Entry.make ~id:999_999 ~rdn:"uid=rogue"
         ~classes:(Oclass.set_of_list [ "person"; "top" ])
         [ (Attr.of_string "uid", Value.String "rogue") ])
      inst
  in
  List.iter
    (fun d ->
      let pool = pool_of d in
      List.iter
        (fun inst ->
          let seq = Legality.check WP.schema inst in
          let par = Legality.check ?pool WP.schema inst in
          if seq <> par then
            failwith
              (Printf.sprintf
                 "P1: %d-domain verdict differs from the sequential engine" d))
        [ instance_of n_fixed; damaged ])
    domain_counts;
  Printf.printf "  verdict equality: all of {1,2,4,8} domains match the sequential engine\n";
  let by_domains =
    Test.make_indexed ~name:"domains" ~args:domain_counts (fun d ->
        Staged.stage
          (let inst = instance_of n_fixed in
           let pool = pool_of d in
           fun () -> ignore (Legality.check ?pool WP.schema inst)))
  in
  let by_size_seq =
    Test.make_indexed ~name:"seq" ~args:sizes (fun n ->
        Staged.stage
          (let inst = instance_of n in
           fun () -> ignore (Legality.check WP.schema inst)))
  in
  let by_size_par =
    Test.make_indexed ~name:"par" ~args:sizes (fun n ->
        Staged.stage
          (let inst = instance_of n in
           let pool = pool_of fixed_domains in
           fun () -> ignore (Legality.check ?pool WP.schema inst)))
  in
  let r =
    run_test ~quota
      (Test.make_grouped ~name:"p1" [ by_domains; by_size_seq; by_size_par ])
  in
  let base = point r "p1/domains" 1 in
  Printf.printf "  domain sweep at |D| = %d:\n  %8s  %12s  %8s\n" n_fixed "domains"
    "check" "speedup";
  List.iter
    (fun d ->
      let t = point r "p1/domains" d in
      Printf.printf "  %8d  %s    %s\n" d (pp_time t) (pp_ratio (base /. t)))
    domain_counts;
  Printf.printf "  |D| sweep at %d domains:\n  %8s  %12s  %12s  %8s\n" fixed_domains
    "|D|" "sequential" "parallel" "speedup";
  List.iter
    (fun n ->
      let s = point r "p1/seq" n and p = point r "p1/par" n in
      Printf.printf "  %8d  %s    %s  %s\n" n (pp_time s) (pp_time p)
        (pp_ratio (s /. p)))
    sizes;
  Printf.printf
    "  shape: per-doubling growth - parallel %.2fx (linear=2; the pool divides\n\
    \  the constant, not the exponent); %d recommended domain(s) on this machine\n"
    (avg (growth (List.map (point r "p1/par") sizes)))
    (Domain.recommended_domain_count ());
  if json then begin
    let buf = Buffer.create 1024 in
    let j_num ns = if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"experiment\": \"P1\",\n";
    Buffer.add_string buf "  \"workload\": \"white-pages\",\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"smoke\": %b,\n  \"recommended_domains\": %d,\n" smoke
         (Domain.recommended_domain_count ()));
    Buffer.add_string buf
      (Printf.sprintf "  \"peak_heap_bytes\": %d,\n" (peak_heap_bytes ()));
    Buffer.add_string buf (Printf.sprintf "  \"fixed_size\": %d,\n" n_fixed);
    Buffer.add_string buf
      (Printf.sprintf "  \"fixed_domains\": %d,\n" fixed_domains);
    Buffer.add_string buf
      (Printf.sprintf "  \"speedup_4_domains_over_1\": %s,\n"
         (let t4 = point r "p1/domains" 4 in
          if Float.is_nan base || Float.is_nan t4 then "null"
          else Printf.sprintf "%.3f" (base /. t4)));
    Buffer.add_string buf "  \"points\": [\n";
    let points =
      List.map
        (fun d -> ("domains-sweep", d, n_fixed, point r "p1/domains" d))
        domain_counts
      @ List.map (fun n -> ("size-sweep-seq", 1, n, point r "p1/seq" n)) sizes
      @ List.map
          (fun n -> ("size-sweep-par", fixed_domains, n, point r "p1/par" n))
          sizes
    in
    List.iteri
      (fun i (series, d, n, ns) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    { \"series\": \"%s\", \"domains\": %d, \"n\": %d, \
              \"ns_per_run\": %s }%s\n"
             series d n (j_num ns)
             (if i = List.length points - 1 then "" else ",")))
      points;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_legality.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "  wrote BENCH_legality.json (%d points)\n" (List.length points)
  end;
  List.iter (fun (_, p) -> Pool.shutdown p) pools

(* --- P2: cost-based query planner ------------------------------------------ *)

(* Four evaluators over one mixed filter/chi query set — the specification
   interpreter (pairwise), the operator-at-a-time scan interpreter, the
   same interpreter with the equality/presence value index, and the
   cost-based planner (range + trigram access paths, selectivity-ordered
   conjunctions) — plus memoized vs unmemoized full structure legality.
   Extensional equality of all four evaluators is asserted before any
   timing.  With [json] the estimates land in BENCH_query.json. *)
let exp_p2 ~smoke ~json () =
  header "P2   cost-based query planner (Section 7 outlook, engineering)"
    "claim: compiling a query against the value-index snapshot (range and\n\
     trigram access paths, most-selective-first conjunctions, residual\n\
     verification) beats the interpreter on mixed filter/chi workloads,\n\
     and hash-consed obligation memoization does the same for full\n\
     structure-legality checks.";
  let quota = if smoke then 0.05 else 0.4 in
  let sizes = if smoke then [ 200; 400 ] else [ 1000; 2000; 4000; 8000 ] in
  let naive_sizes = if smoke then [ 200 ] else [ 1000; 2000 ] in
  let instance_of n = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
  let at = Attr.of_string and cl = Oclass.of_string in
  (* the mixed query set: a selective conjunction with a Not residual, a
     range conjunction, a bare substring selection, and a Figure-4-shaped
     chi query whose inner selection is itself a conjunction *)
  let queries =
    [
      Query.Select
        (Filter.And
           [
             Filter.class_eq (cl "researcher");
             Filter.Present (at "mail");
             Filter.Not
               (Filter.Substr
                  (at "uid", { Filter.initial = None; any = [ "p1" ]; final = None }));
           ]);
      Query.Select
        (Filter.And
           [
             Filter.class_eq (cl "person");
             Filter.Ge (at "uid", "u20");
             Filter.Le (at "uid", "u40");
           ]);
      Query.Select
        (Filter.Substr
           (at "name", { Filter.initial = Some "name of u3"; any = []; final = None }));
      Query.Minus
        ( Query.select_class (cl "orggroup"),
          Query.Chi
            ( Query.Descendant,
              Query.select_class (cl "orggroup"),
              Query.Select
                (Filter.And
                   [ Filter.class_eq (cl "person"); Filter.Present (at "mail") ]) ) );
    ]
  in
  (* extensional equality of all four evaluators before timing anything *)
  let check_n = if smoke then 200 else 1000 in
  let () =
    let inst = instance_of check_n in
    let ix = Index.create inst in
    let vx = Vindex.create ix in
    List.iteri
      (fun i q ->
        let naive = List.sort compare (Naive_eval.eval inst q) in
        let scan = List.sort compare (Index.ids_of ix (Eval.eval ix q)) in
        let indexed =
          List.sort compare (Index.ids_of ix (Eval.eval ~vindex:vx ix q))
        in
        let planned = List.sort compare (Plan.eval_ids vx q) in
        if not (scan = naive && indexed = naive && planned = naive) then
          failwith
            (Printf.sprintf "P2: evaluators disagree on query %d at |D| = %d" i
               check_n))
      queries;
    Printf.printf
      "  extensional equality: naive = scan = indexed = planned on all %d queries\n"
      (List.length queries)
  in
  let naive =
    Test.make_indexed ~name:"naive" ~args:naive_sizes (fun n ->
        Staged.stage
          (let inst = instance_of n in
           fun () -> List.iter (fun q -> ignore (Naive_eval.eval inst q)) queries))
  in
  let scan =
    Test.make_indexed ~name:"scan" ~args:sizes (fun n ->
        Staged.stage
          (let ix = Index.create (instance_of n) in
           fun () -> List.iter (fun q -> ignore (Eval.eval ix q)) queries))
  in
  let indexed =
    Test.make_indexed ~name:"indexed" ~args:sizes (fun n ->
        Staged.stage
          (let ix = Index.create (instance_of n) in
           let vx = Vindex.create ix in
           fun () -> List.iter (fun q -> ignore (Eval.eval ~vindex:vx ix q)) queries))
  in
  let planned =
    Test.make_indexed ~name:"planned" ~args:sizes (fun n ->
        Staged.stage
          (let ix = Index.create (instance_of n) in
           let vx = Vindex.create ix in
           (* touch the lazy range/trigram structures once so the steady
              state, not the first-call build, is what gets timed *)
           List.iter (fun q -> ignore (Plan.eval vx q)) queries;
           fun () -> List.iter (fun q -> ignore (Plan.eval vx q)) queries))
  in
  (* full structure legality: hash-consed obligation memoization vs the
     direct per-obligation interpreter (the pre-planner baseline).  Both
     series get the prebuilt evaluation index; the memoized one also gets
     the value index — like the rank index, it is a snapshot-scoped
     structure a directory maintains across checks, not per-check work *)
  let sl_memo =
    Test.make_indexed ~name:"sl-memo" ~args:sizes (fun n ->
        Staged.stage
          (let inst = instance_of n in
           let ix = Index.create inst in
           let vx = Vindex.create ix in
           fun () ->
             ignore (Structure_legality.check ~index:ix ~vindex:vx WP.schema inst)))
  in
  let sl_nomemo =
    Test.make_indexed ~name:"sl-nomemo" ~args:sizes (fun n ->
        Staged.stage
          (let inst = instance_of n in
           let ix = Index.create inst in
           fun () ->
             ignore
               (Structure_legality.check ~index:ix ~memoize:false WP.schema inst)))
  in
  let r =
    run_test ~quota
      (Test.make_grouped ~name:"p2"
         [ naive; scan; indexed; planned; sl_memo; sl_nomemo ])
  in
  Printf.printf "  mixed filter/chi query set (%d queries per run):\n" (List.length queries);
  Printf.printf "  %8s  %12s  %12s  %12s  %12s  %13s\n" "|D|" "naive" "scan"
    "indexed" "planned" "indexed/plan";
  List.iter
    (fun n ->
      let nv = point r "p2/naive" n
      and s = point r "p2/scan" n
      and i = point r "p2/indexed" n
      and p = point r "p2/planned" n in
      Printf.printf "  %8d  %s    %s    %s    %s      %s\n" n (pp_time nv)
        (pp_time s) (pp_time i) (pp_time p)
        (pp_ratio (i /. p)))
    sizes;
  Printf.printf "  full structure legality on the same instances:\n";
  Printf.printf "  %8s  %12s  %12s  %13s\n" "|D|" "unmemoized" "memoized"
    "speedup";
  List.iter
    (fun n ->
      let u = point r "p2/sl-nomemo" n and m = point r "p2/sl-memo" n in
      Printf.printf "  %8d  %s    %s      %s\n" n (pp_time u) (pp_time m)
        (pp_ratio (u /. m)))
    sizes;
  let n_max = List.fold_left max 0 sizes in
  Printf.printf
    "  shape: per-doubling growth - planned %.2fx (linear=2); at |D| = %d the\n\
    \  planner runs %.2fx faster than the indexed interpreter and memoization\n\
    \  cuts structure legality by %.2fx\n"
    (avg (growth (List.map (point r "p2/planned") sizes)))
    n_max
    (point r "p2/indexed" n_max /. point r "p2/planned" n_max)
    (point r "p2/sl-nomemo" n_max /. point r "p2/sl-memo" n_max);
  if json then begin
    let buf = Buffer.create 1024 in
    let j_num ns = if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns in
    let j_ratio a b =
      if Float.is_nan a || Float.is_nan b then "null"
      else Printf.sprintf "%.3f" (a /. b)
    in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"experiment\": \"P2\",\n";
    Buffer.add_string buf "  \"workload\": \"white-pages\",\n";
    Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
    Buffer.add_string buf
      (Printf.sprintf "  \"peak_heap_bytes\": %d,\n" (peak_heap_bytes ()));
    Buffer.add_string buf "  \"queries\": [\n";
    List.iteri
      (fun i q ->
        Buffer.add_string buf
          (Printf.sprintf "    %S%s\n" (Query.to_string q)
             (if i = List.length queries - 1 then "" else ",")))
      queries;
    Buffer.add_string buf "  ],\n";
    Buffer.add_string buf (Printf.sprintf "  \"max_size\": %d,\n" n_max);
    Buffer.add_string buf
      (Printf.sprintf "  \"planned_speedup_over_indexed\": %s,\n"
         (j_ratio (point r "p2/indexed" n_max) (point r "p2/planned" n_max)));
    Buffer.add_string buf
      (Printf.sprintf "  \"memo_speedup_structure_legality\": %s,\n"
         (j_ratio (point r "p2/sl-nomemo" n_max) (point r "p2/sl-memo" n_max)));
    Buffer.add_string buf "  \"points\": [\n";
    let points =
      List.map (fun n -> ("naive", n, point r "p2/naive" n)) naive_sizes
      @ List.concat_map
          (fun series ->
            List.map (fun n -> (series, n, point r ("p2/" ^ series) n)) sizes)
          [ "scan"; "indexed"; "planned"; "sl-memo"; "sl-nomemo" ]
    in
    List.iteri
      (fun i (series, n, ns) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    { \"series\": \"%s\", \"n\": %d, \"ns_per_run\": %s }%s\n"
             series n (j_num ns)
             (if i = List.length points - 1 then "" else ",")))
      points;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_query.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "  wrote BENCH_query.json (%d points)\n" (List.length points)
  end

(* --- P3: live sessions, incremental maintenance vs rebuild ------------------ *)

(* Interleaved update/query traffic against one directory.  Two layers:

   - snapshot maintenance in isolation: after a small transaction, patch
     the (index, vindex, memo) triple incrementally (Index.apply /
     Vindex.apply / Plan.memo_apply) vs rebuild all three from scratch,
     then answer the Figure-4 obligation query set from the result;
   - end-to-end sessions: Directory.apply (incremental legality + patched
     snapshot + migrated memo) vs the pre-facade flow of Monitor.apply
     followed by a fresh snapshot build, each followed by the same query
     batch.

   The incremental side is O(|Δ| + shifted interval) per transaction; the
   rebuild side pays O(|D|) per transaction, so the gap must widen
   linearly with |D|.  With [json] the estimates land in
   BENCH_session.json. *)
let exp_p3 ~smoke ~json () =
  header "P3   live directory sessions (incremental index maintenance)"
    "claim: patching the evaluation index by interval shifting (plus value\n\
     tables and query memo) makes an update-then-query tick O(|delta|),\n\
     while rebuild-per-update pays O(|D|) - same answers, widening gap.";
  let quota = if smoke then 0.05 else 0.4 in
  let sizes = if smoke then [ 200; 400 ] else [ 1000; 2000; 4000; 8000 ] in
  let instance_of n = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
  let queries =
    List.map (fun (_, q, _) -> q) (Translate.all WP.schema.Schema.structure)
  in
  let setup n =
    let base = instance_of n in
    let unit =
      Bounds_model.Instance.fold
        (fun e acc ->
          if Entry.has_class e (Oclass.of_string "orgunit") then Some (Entry.id e)
          else acc)
        base None
      |> Option.get
    in
    let victim =
      Bounds_model.Instance.fold
        (fun e acc ->
          if
            Entry.has_class e (Oclass.of_string "person")
            && Bounds_model.Instance.is_leaf base (Entry.id e)
          then Some (Entry.id e)
          else acc)
        base None
      |> Option.get
    in
    let mk_person id =
      Entry.make ~id
        ~rdn:(Printf.sprintf "uid=p3b%d" id)
        ~classes:(Oclass.set_of_list [ "person"; "top" ])
        [
          (Attr.of_string "uid", Value.String (Printf.sprintf "p3b%d" id));
          (Attr.of_string "name", Value.String "bench");
        ]
    in
    (* one small transaction: a two-entry subtree in (a sub-unit with one
       person, legal under the white-pages structure schema), one leaf
       out *)
    let mk_unit id =
      Entry.make ~id
        ~rdn:(Printf.sprintf "ou=p3b%d" id)
        ~classes:(Oclass.set_of_list [ "orgunit"; "orggroup"; "top" ])
        [ (Attr.of_string "ou", Value.String (Printf.sprintf "p3b%d" id)) ]
    in
    let ops =
      [
        Update.Insert { parent = Some unit; entry = mk_unit 2_000_000 };
        Update.Insert { parent = Some 2_000_000; entry = mk_person 2_000_001 };
        Update.Delete victim;
      ]
    in
    (base, ops)
  in
  (* answer equality at the smallest size before timing anything *)
  let () =
    let base, ops = List.hd sizes |> setup in
    let ix = Index.create base in
    let vx = Vindex.create ix in
    let memo = Plan.memo_create vx in
    Plan.prewarm memo queries;
    let b = Index.Builder.of_version ix in
    List.iter (Index.Builder.apply_op b) ops;
    let splices = Index.Builder.splices b in
    let ix' = Index.Builder.seal b in
    let vx' = Vindex.apply ~index:ix' ops vx in
    let memo' = Plan.memo_apply ~vindex:vx' ~splices ops memo in
    let final = Result.get_ok (Update.apply base ops) in
    let fresh_ix = Index.create final in
    let fresh_vx = Vindex.create fresh_ix in
    List.iteri
      (fun i q ->
        let inc = List.sort compare (Index.ids_of ix' (Plan.memo_eval memo' q)) in
        let reb =
          List.sort compare (Index.ids_of fresh_ix (Plan.eval fresh_vx q))
        in
        if inc <> reb then
          failwith
            (Printf.sprintf "P3: incremental and rebuilt snapshots disagree on query %d" i))
      queries;
    Printf.printf
      "  answer equality: patched and rebuilt snapshots agree on all %d queries\n"
      (List.length queries)
  in
  let snap_inc =
    Test.make_indexed ~name:"snap-incremental" ~args:sizes (fun n ->
        Staged.stage
          (let base, ops = setup n in
           let ix = Index.create base in
           let vx = Vindex.create ix in
           let memo = Plan.memo_create vx in
           Plan.prewarm memo queries;
           List.iter (fun q -> ignore (Plan.memo_eval memo q)) queries;
           fun () ->
             let b = Index.Builder.of_version ix in
             List.iter (Index.Builder.apply_op b) ops;
             let splices = Index.Builder.splices b in
             let ix' = Index.Builder.seal b in
             let vx' = Vindex.apply ~index:ix' ops vx in
             let memo' = Plan.memo_apply ~vindex:vx' ~splices ops memo in
             List.iter (fun q -> ignore (Plan.memo_eval memo' q)) queries))
  in
  let snap_reb =
    Test.make_indexed ~name:"snap-rebuild" ~args:sizes (fun n ->
        Staged.stage
          (let base, ops = setup n in
           fun () ->
             let final = Result.get_ok (Update.apply base ops) in
             let ix' = Index.create final in
             let vx' = Vindex.create ix' in
             let memo' = Plan.memo_create vx' in
             Plan.prewarm memo' queries;
             List.iter (fun q -> ignore (Plan.memo_eval memo' q)) queries))
  in
  let session =
    Test.make_indexed ~name:"session" ~args:sizes (fun n ->
        Staged.stage
          (let base, ops = setup n in
           let dir = Result.get_ok (Directory.open_ WP.schema base) in
           fun () ->
             let dir, _ = Directory.apply dir ops in
             List.iter (fun q -> ignore (Directory.query dir q)) queries))
  in
  let session_reb =
    Test.make_indexed ~name:"session-rebuild" ~args:sizes (fun n ->
        Staged.stage
          (let base, ops = setup n in
           let m = Result.get_ok (Monitor.create WP.schema base) in
           fun () ->
             let m, _ = Result.get_ok (Monitor.apply ops m) in
             let ix' = Index.create (Monitor.instance m) in
             let vx' = Vindex.create ix' in
             let memo' = Plan.memo_create vx' in
             Plan.prewarm memo' queries;
             List.iter (fun q -> ignore (Plan.memo_eval memo' q)) queries))
  in
  let r =
    run_test ~quota
      (Test.make_grouped ~name:"p3" [ snap_inc; snap_reb; session; session_reb ])
  in
  Printf.printf
    "  snapshot maintenance per transaction (patch vs rebuild, then %d queries):\n"
    (List.length queries);
  Printf.printf "  %8s  %13s  %13s  %8s\n" "|D|" "incremental" "rebuild" "speedup";
  List.iter
    (fun n ->
      let i = point r "p3/snap-incremental" n and b = point r "p3/snap-rebuild" n in
      Printf.printf "  %8d  %s     %s  %s\n" n (pp_time i) (pp_time b)
        (pp_ratio (b /. i)))
    sizes;
  Printf.printf "  end-to-end sessions (legality + snapshot + queries):\n";
  Printf.printf "  %8s  %13s  %16s  %8s\n" "|D|" "Directory" "monitor+rebuild"
    "speedup";
  List.iter
    (fun n ->
      let s = point r "p3/session" n and b = point r "p3/session-rebuild" n in
      Printf.printf "  %8d  %s     %s     %s\n" n (pp_time s) (pp_time b)
        (pp_ratio (b /. s)))
    sizes;
  let n_max = List.fold_left max 0 sizes in
  Printf.printf
    "  shape: per-doubling growth - incremental %.2fx (flat=1), rebuild %.2fx\n\
    \  (linear=2); at |D| = %d the live session answers an update-and-query\n\
    \  tick %.2fx faster than rebuild-per-update\n"
    (avg (growth (List.map (point r "p3/snap-incremental") sizes)))
    (avg (growth (List.map (point r "p3/snap-rebuild") sizes)))
    n_max
    (point r "p3/session-rebuild" n_max /. point r "p3/session" n_max);
  if json then begin
    let buf = Buffer.create 1024 in
    let j_num ns = if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns in
    let j_ratio a b =
      if Float.is_nan a || Float.is_nan b then "null"
      else Printf.sprintf "%.3f" (a /. b)
    in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"experiment\": \"P3\",\n";
    Buffer.add_string buf "  \"workload\": \"white-pages\",\n";
    Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
    Buffer.add_string buf
      (Printf.sprintf "  \"peak_heap_bytes\": %d,\n" (peak_heap_bytes ()));
    Buffer.add_string buf
      (Printf.sprintf "  \"queries_per_tick\": %d,\n" (List.length queries));
    Buffer.add_string buf (Printf.sprintf "  \"max_size\": %d,\n" n_max);
    Buffer.add_string buf
      (Printf.sprintf "  \"snapshot_incremental_speedup\": %s,\n"
         (j_ratio (point r "p3/snap-rebuild" n_max)
            (point r "p3/snap-incremental" n_max)));
    Buffer.add_string buf
      (Printf.sprintf "  \"session_incremental_speedup\": %s,\n"
         (j_ratio (point r "p3/session-rebuild" n_max)
            (point r "p3/session" n_max)));
    Buffer.add_string buf "  \"points\": [\n";
    let points =
      List.concat_map
        (fun series ->
          List.map (fun n -> (series, n, point r ("p3/" ^ series) n)) sizes)
        [ "snap-incremental"; "snap-rebuild"; "session"; "session-rebuild" ]
    in
    List.iteri
      (fun i (series, n, ns) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    { \"series\": \"%s\", \"n\": %d, \"ns_per_run\": %s }%s\n"
             series n (j_num ns)
             (if i = List.length points - 1 then "" else ",")))
      points;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_session.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "  wrote BENCH_session.json (%d points)\n" (List.length points)
  end

(* --- P4: durable sessions, WAL append vs rewrite-per-transaction ------------ *)

(* A store directory under the system temp dir, cleared of any earlier
   bench run so [Store.init] finds no marker.  fsync is off: P4/P5
   measure the WAL-vs-rewrite and replay shapes, not disk sync latency —
   P6 owns the fsync-on numbers and the group-commit amortization. *)
let p4_io name =
  let root =
    Filename.concat (Filename.get_temp_dir_name ()) ("bounds-bench-" ^ name)
  in
  let io = Sio.real ~fsync:false ~root () in
  List.iter io.Sio.remove
    [
      Store.schema_file;
      Store.checkpoint_file;
      Store.delta_file;
      Store.wal_file;
      "snapshot.ldif";
    ];
  io

(* Durability has two costs the WAL design trades between: the per-
   transaction cost of making an accepted transaction durable, and the
   recovery cost of reopening after a crash.

   - per transaction: the store appends one CRC-framed record, O(|delta|)
     bytes, however large the directory; the strawman that rewrites the
     full LDIF snapshot after every transaction pays O(|D|).
   - recovery: checkpoint load is O(|D|) and tail replay is O(records),
     so recovery grows linearly in the log length between checkpoints -
     which is exactly what [checkpoint] (compaction) bounds.

   Both sides run against real files ([Io.real]) in the system temp
   directory.  With [json] the estimates land in BENCH_store.json. *)
let exp_p4 ~smoke ~json () =
  header "P4   durable sessions (write-ahead log vs rewrite-per-transaction)"
    "claim: on top of the in-memory session tick, one framed WAL append\n\
     adds O(|delta|) durability overhead independent of |D|; rewriting the\n\
     snapshot adds O(|D|).  Recovery replays the tail, so compaction bounds it.";
  let quota = if smoke then 0.05 else 0.4 in
  let sizes = if smoke then [ 200; 400 ] else [ 1000; 2000; 4000; 8000 ] in
  let instance_of n = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
  let find_unit base =
    Bounds_model.Instance.fold
      (fun e acc ->
        if Entry.has_class e (Oclass.of_string "orgunit") then Some (Entry.id e)
        else acc)
      base None
    |> Option.get
  in
  let mk_person id =
    Entry.make ~id
      ~rdn:(Printf.sprintf "uid=p4b%d" id)
      ~classes:(Oclass.set_of_list [ "person"; "top" ])
      [
        (Attr.of_string "uid", Value.String (Printf.sprintf "p4b%d" id));
        (Attr.of_string "name", Value.String "bench");
      ]
  in
  (* round-trip equality at the smallest size before timing anything *)
  let () =
    let base = instance_of (List.hd sizes) in
    let unit = find_unit base in
    let io = p4_io "p4check" in
    let st = Result.get_ok (Store.init io WP.schema base) in
    let ops = [ Update.Insert { parent = Some unit; entry = mk_person 3_000_000 } ] in
    ignore (Store.apply st ops);
    Store.close st;
    let st', report = Result.get_ok (Store.open_ io) in
    let twin =
      Result.get_ok (Update.apply base ops)
    in
    if not (Bounds_model.Instance.equal (Directory.instance (Store.directory st')) twin)
    then failwith "P4: recovered store disagrees with in-memory twin";
    if report.Store.tail <> Store.Clean then failwith "P4: clean log recovered as damaged";
    Store.close st';
    Printf.printf
      "  answer equality: recovered store agrees with the in-memory twin\n"
  in
  (* one durable tick: insert a fresh person, then delete it - two accepted
     transactions, state returns to base, durability paid twice.  The
     in-memory series runs the same tick with no persistence at all: the
     shared baseline both durability strategies pay on top of. *)
  let mem =
    Test.make_indexed ~name:"in-memory" ~args:sizes (fun n ->
        Staged.stage
          (let base = instance_of n in
           let unit = find_unit base in
           let dir = Result.get_ok (Directory.open_ WP.schema base) in
           let ins = [ Update.Insert { parent = Some unit; entry = mk_person 3_000_000 } ] in
           let del = [ Update.Delete 3_000_000 ] in
           fun () ->
             let d1, _ = Directory.apply dir ins in
             ignore (Directory.apply d1 del)))
  in
  let wal =
    Test.make_indexed ~name:"wal-append" ~args:sizes (fun n ->
        Staged.stage
          (let base = instance_of n in
           let unit = find_unit base in
           let io = p4_io (Printf.sprintf "p4w%d" n) in
           let st = Result.get_ok (Store.init io WP.schema base) in
           let ins = [ Update.Insert { parent = Some unit; entry = mk_person 3_000_000 } ] in
           let del = [ Update.Delete 3_000_000 ] in
           fun () ->
             ignore (Store.apply st ins);
             ignore (Store.apply st del)))
  in
  let rewrite =
    Test.make_indexed ~name:"snapshot-rewrite" ~args:sizes (fun n ->
        Staged.stage
          (let base = instance_of n in
           let unit = find_unit base in
           let io = p4_io (Printf.sprintf "p4r%d" n) in
           let dir = Result.get_ok (Directory.open_ WP.schema base) in
           let ins = [ Update.Insert { parent = Some unit; entry = mk_person 3_000_000 } ] in
           let del = [ Update.Delete 3_000_000 ] in
           fun () ->
             let d1, _ = Directory.apply dir ins in
             io.Sio.write "snapshot.ldif"
               (Bounds_codec.Ldif.to_string (Directory.instance d1));
             let d2, _ = Directory.apply d1 del in
             io.Sio.write "snapshot.ldif"
               (Bounds_codec.Ldif.to_string (Directory.instance d2))))
  in
  (* recovery sweep: fixed |D|, growing log tail *)
  let rec_n = if smoke then 200 else 2000 in
  let tails = if smoke then [ 4; 16 ] else [ 0; 64; 256; 1024 ] in
  let recover =
    Test.make_indexed ~name:"recover" ~args:tails (fun k ->
        Staged.stage
          (let base = instance_of rec_n in
           let unit = find_unit base in
           let io = p4_io (Printf.sprintf "p4rec%d" k) in
           let st = Result.get_ok (Store.init io WP.schema base) in
           for i = 0 to k - 1 do
             ignore
               (Store.apply st
                  [ Update.Insert { parent = Some unit; entry = mk_person (3_000_000 + i) } ])
           done;
           Store.close st;
           (* the checked path: P4's linear-tail claim is about
              re-admitting replay; P5 owns the trusted comparison *)
           fun () ->
             let st', _ = Result.get_ok (Store.open_ ~trusted:false io) in
             Store.close st'))
  in
  let r =
    run_test ~quota (Test.make_grouped ~name:"p4" [ mem; wal; rewrite; recover ])
  in
  (* ratio of a durable tick to the shared in-memory tick: the WAL should
     track the baseline (durability overhead within noise), the rewrite
     strawman should sit a widening factor above it *)
  let ratio series n = point r ("p4/" ^ series) n /. point r "p4/in-memory" n in
  Printf.printf
    "  durability per tick (insert + delete, each made durable on accept):\n";
  Printf.printf "  %8s  %13s  %13s  %13s  %8s  %8s\n" "|D|" "in-memory"
    "wal-append" "rewrite" "wal/mem" "rw/mem";
  List.iter
    (fun n ->
      let m = point r "p4/in-memory" n
      and w = point r "p4/wal-append" n
      and s = point r "p4/snapshot-rewrite" n in
      Printf.printf "  %8d  %s     %s     %s  %s  %s\n" n (pp_time m)
        (pp_time w) (pp_time s)
        (pp_ratio (w /. m))
        (pp_ratio (s /. m)))
    sizes;
  Printf.printf "  recovery time vs log tail length (|D| = %d):\n" rec_n;
  Printf.printf "  %8s  %13s\n" "records" "recovery";
  List.iter
    (fun k -> Printf.printf "  %8d  %s\n" k (pp_time (point r "p4/recover" k)))
    tails;
  let n_max = List.fold_left max 0 sizes in
  let k_max = List.fold_left max 0 tails and k_min = List.fold_left min max_int tails in
  Printf.printf
    "  shape: the WAL tick tracks the in-memory tick (ratio %.2f at\n\
    \  |D| = %d - durability overhead within noise), the rewrite tick sits\n\
    \  %.2fx above it; at |D| = %d the WAL makes a tick durable %.2fx faster\n\
    \  than rewriting; a %d-record tail costs %.2fx the %d-record recovery -\n\
    \  checkpointing (compaction) is what keeps that factor small\n"
    (ratio "wal-append" n_max) n_max
    (ratio "snapshot-rewrite" n_max) n_max
    (point r "p4/snapshot-rewrite" n_max /. point r "p4/wal-append" n_max)
    k_max
    (point r "p4/recover" k_max /. point r "p4/recover" k_min)
    k_min;
  if json then begin
    let buf = Buffer.create 1024 in
    let j_num ns = if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns in
    let j_ratio a b =
      if Float.is_nan a || Float.is_nan b then "null"
      else Printf.sprintf "%.3f" (a /. b)
    in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"experiment\": \"P4\",\n";
    Buffer.add_string buf "  \"workload\": \"white-pages\",\n";
    Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
    Buffer.add_string buf
      (Printf.sprintf "  \"peak_heap_bytes\": %d,\n" (peak_heap_bytes ()));
    Buffer.add_string buf (Printf.sprintf "  \"max_size\": %d,\n" n_max);
    Buffer.add_string buf (Printf.sprintf "  \"recovery_size\": %d,\n" rec_n);
    Buffer.add_string buf
      (Printf.sprintf "  \"wal_speedup\": %s,\n"
         (j_ratio (point r "p4/snapshot-rewrite" n_max)
            (point r "p4/wal-append" n_max)));
    Buffer.add_string buf
      (Printf.sprintf "  \"wal_over_memory\": %s,\n"
         (j_ratio (point r "p4/wal-append" n_max) (point r "p4/in-memory" n_max)));
    Buffer.add_string buf
      (Printf.sprintf "  \"rewrite_over_memory\": %s,\n"
         (j_ratio (point r "p4/snapshot-rewrite" n_max)
            (point r "p4/in-memory" n_max)));
    Buffer.add_string buf
      (Printf.sprintf "  \"recovery_tail_factor\": %s,\n"
         (j_ratio (point r "p4/recover" k_max) (point r "p4/recover" k_min)));
    Buffer.add_string buf "  \"points\": [\n";
    let points =
      List.concat_map
        (fun (series, args) ->
          List.map (fun n -> (series, n, point r ("p4/" ^ series) n)) args)
        [
          ("in-memory", sizes);
          ("wal-append", sizes);
          ("snapshot-rewrite", sizes);
          ("recover", tails);
        ]
    in
    List.iteri
      (fun i (series, n, ns) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    { \"series\": \"%s\", \"n\": %d, \"ns_per_run\": %s }%s\n"
             series n (j_num ns)
             (if i = List.length points - 1 then "" else ",")))
      points;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_store.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "  wrote BENCH_store.json (%d points)\n" (List.length points)
  end

(* --- P5: trusted replay and streaming bulk ingest --------------------------- *)

(* Recovery re-admission is the tail's dominant cost: the checked path
   pays O(|D|) legality work per replayed record, the trusted path
   (records were admitted before acknowledgement; the CRC frame vouches
   the bytes) pays only decode + state maintenance, batched into one
   index rebuild past the cost crossover.  Ingest likewise: a bulk load
   streams entries into one index build and one admission check instead
   of a full transactional round-trip per entry. *)
let exp_p5 ~smoke ~json () =
  header "P5   trusted replay and streaming bulk ingest"
    "claim: logged records passed admission when first acknowledged, so\n\
     replay may skip legality checks - recovery becomes decode + state\n\
     maintenance, O(|D| + delta) not O(delta x re-admission); bulk load\n\
     pays one admission check for the whole dump, not one per entry.";
  let quota = if smoke then 0.05 else 0.4 in
  let rec_n = if smoke then 200 else 2000 in
  let tails = if smoke then [ 4; 16 ] else [ 64; 256; 1024 ] in
  let batches = if smoke then [ 100; 400 ] else [ 1000; 4000 ] in
  let seed_n = if smoke then 100 else 200 in
  let instance_of n = WP.generate ~seed:n ~units:(n / 25) ~persons_per_unit:20 () in
  let find_unit base =
    Bounds_model.Instance.fold
      (fun e acc ->
        if Entry.has_class e (Oclass.of_string "orgunit") then Some (Entry.id e)
        else acc)
      base None
    |> Option.get
  in
  let mk_person id =
    Entry.make ~id
      ~rdn:(Printf.sprintf "uid=p5b%d" id)
      ~classes:(Oclass.set_of_list [ "person"; "top" ])
      [
        (Attr.of_string "uid", Value.String (Printf.sprintf "p5b%d" id));
        (Attr.of_string "name", Value.String "bench");
      ]
  in
  (* prepare a store directory with a k-record tail, once per series arg *)
  let prepared name k =
    let base = instance_of rec_n in
    let unit = find_unit base in
    let io = p4_io (Printf.sprintf "%s%d" name k) in
    let st = Result.get_ok (Store.init io WP.schema base) in
    for i = 0 to k - 1 do
      ignore
        (Store.apply st
                 [ Update.Insert { parent = Some unit; entry = mk_person (4_000_000 + i) } ])
    done;
    Store.close st;
    io
  in
  (* answer equality before timing anything: the same tail recovered
     through every engine lands on the same instance *)
  let () =
    let io = prepared "p5check" (List.hd tails) in
    let open_with ?ingest trusted =
      let st, report = Result.get_ok (Store.open_ ~trusted ?ingest io) in
      if report.Store.tail <> Store.Clean then
        failwith "P5: clean log recovered as damaged";
      let i = Directory.instance (Store.directory st) in
      Store.close st;
      i
    in
    let checked = open_with false in
    List.iter
      (fun (label, ingest) ->
        if not (Bounds_model.Instance.equal checked (open_with ~ingest true))
        then failwith ("P5: trusted recovery (" ^ label ^ ") diverged"))
      [ ("auto", `Auto); ("batch", `Batch); ("incremental", `Incremental) ];
    Printf.printf
      "  answer equality: checked and trusted recovery (auto/batch/incremental)\n\
      \  agree on the recovered instance\n"
  in
  let recover name ?ingest trusted =
    Test.make_indexed ~name ~args:tails (fun k ->
        Staged.stage
          (let io = prepared name k in
           fun () ->
             let st, _ = Result.get_ok (Store.open_ ~trusted ?ingest io) in
             Store.close st))
  in
  let rec_checked = recover "recover-checked" false in
  let rec_trusted = recover "recover-trusted" true in
  let rec_batch = recover "recover-batch" ~ingest:`Batch true in
  let rec_incr = recover "recover-incremental" ~ingest:`Incremental true in
  (* ingest m entries into a small seed store: streaming bulk load with
     one final admission check, vs one logged transaction per entry
     (both end checkpointed, so the durable end states match) *)
  let reset io =
    List.iter io.Sio.remove
      [ Store.schema_file; Store.checkpoint_file; Store.delta_file; Store.wal_file ]
  in
  let load_bulk =
    Test.make_indexed ~name:"load-bulk" ~args:batches (fun m ->
        Staged.stage
          (let base = instance_of seed_n in
           let unit = find_unit base in
           let io = p4_io (Printf.sprintf "p5lb%d" m) in
           fun () ->
             reset io;
             let st = Result.get_ok (Store.init io WP.schema base) in
             let n =
               Result.get_ok
                 (Store.load st (fun add ->
                      let rec go i =
                        if i = m then Ok ()
                        else
                          match
                            add ~parent:(Some unit) (mk_person (4_000_000 + i))
                          with
                          | Ok () -> go (i + 1)
                          | Error _ as e -> e
                      in
                      go 0))
             in
             assert (n = m);
             Store.close st))
  in
  let load_apply =
    Test.make_indexed ~name:"load-apply" ~args:batches (fun m ->
        Staged.stage
          (let base = instance_of seed_n in
           let unit = find_unit base in
           let io = p4_io (Printf.sprintf "p5la%d" m) in
           fun () ->
             reset io;
             let st = Result.get_ok (Store.init io WP.schema base) in
             for i = 0 to m - 1 do
               ignore
                 (Store.apply st
                 [
                         Update.Insert
                           { parent = Some unit; entry = mk_person (4_000_000 + i) };
                       ])
             done;
             Store.checkpoint st;
             Store.close st))
  in
  let r =
    run_test ~quota
      (Test.make_grouped ~name:"p5"
         [ rec_checked; rec_trusted; rec_batch; rec_incr; load_bulk; load_apply ])
  in
  let p series n = point r ("p5/" ^ series) n in
  let k_max = List.fold_left max 0 tails
  and k_min = List.fold_left min max_int tails in
  let m_max = List.fold_left max 0 batches in
  Printf.printf "  recovery of a k-record tail (|D| = %d):\n" rec_n;
  Printf.printf "  %8s  %13s  %13s  %13s  %13s  %9s\n" "records" "checked"
    "trusted" "batch" "incremental" "chk/trust";
  List.iter
    (fun k ->
      Printf.printf "  %8d  %s     %s     %s     %s  %s\n" k
        (pp_time (p "recover-checked" k))
        (pp_time (p "recover-trusted" k))
        (pp_time (p "recover-batch" k))
        (pp_time (p "recover-incremental" k))
        (pp_ratio (p "recover-checked" k /. p "recover-trusted" k)))
    tails;
  Printf.printf "  ingest of m entries into a %d-entry store:\n" seed_n;
  Printf.printf "  %8s  %13s  %13s  %9s\n" "entries" "per-entry" "bulk-load"
    "ratio";
  List.iter
    (fun m ->
      Printf.printf "  %8d  %s     %s  %s\n" m
        (pp_time (p "load-apply" m))
        (pp_time (p "load-bulk" m))
        (pp_ratio (p "load-apply" m /. p "load-bulk" m)))
    batches;
  Printf.printf
    "  shape: trusted replay recovers the %d-record tail %.1fx faster than\n\
    \  checked re-admission (%.1fx at %d records); forced batch vs forced\n\
    \  incremental shows the rebuild crossover (%.2fx at %d, %.2fx at %d);\n\
    \  bulk load ingests %d entries %.1fx faster than per-entry transactions\n"
    k_max
    (p "recover-checked" k_max /. p "recover-trusted" k_max)
    (p "recover-checked" k_min /. p "recover-trusted" k_min)
    k_min
    (p "recover-incremental" k_min /. p "recover-batch" k_min)
    k_min
    (p "recover-incremental" k_max /. p "recover-batch" k_max)
    k_max m_max
    (p "load-apply" m_max /. p "load-bulk" m_max);
  if json then begin
    let buf = Buffer.create 1024 in
    let j_num ns = if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns in
    let j_ratio a b =
      if Float.is_nan a || Float.is_nan b then "null"
      else Printf.sprintf "%.3f" (a /. b)
    in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"experiment\": \"P5\",\n";
    Buffer.add_string buf "  \"workload\": \"white-pages\",\n";
    Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
    Buffer.add_string buf
      (Printf.sprintf "  \"peak_heap_bytes\": %d,\n" (peak_heap_bytes ()));
    Buffer.add_string buf (Printf.sprintf "  \"recovery_size\": %d,\n" rec_n);
    Buffer.add_string buf (Printf.sprintf "  \"max_tail\": %d,\n" k_max);
    Buffer.add_string buf (Printf.sprintf "  \"max_batch\": %d,\n" m_max);
    Buffer.add_string buf
      (Printf.sprintf "  \"recovery_speedup\": %s,\n"
         (j_ratio (p "recover-checked" k_max) (p "recover-trusted" k_max)));
    Buffer.add_string buf
      (Printf.sprintf "  \"load_speedup\": %s,\n"
         (j_ratio (p "load-apply" m_max) (p "load-bulk" m_max)));
    Buffer.add_string buf
      (Printf.sprintf "  \"batch_gain_small_tail\": %s,\n"
         (j_ratio (p "recover-incremental" k_min) (p "recover-batch" k_min)));
    Buffer.add_string buf
      (Printf.sprintf "  \"batch_gain_large_tail\": %s,\n"
         (j_ratio (p "recover-incremental" k_max) (p "recover-batch" k_max)));
    Buffer.add_string buf "  \"points\": [\n";
    let points =
      List.concat_map
        (fun (series, args) -> List.map (fun n -> (series, n, p series n)) args)
        [
          ("recover-checked", tails);
          ("recover-trusted", tails);
          ("recover-batch", tails);
          ("recover-incremental", tails);
          ("load-apply", batches);
          ("load-bulk", batches);
        ]
    in
    List.iteri
      (fun i (series, n, ns) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    { \"series\": \"%s\", \"n\": %d, \"ns_per_run\": %s }%s\n"
             series n (j_num ns)
             (if i = List.length points - 1 then "" else ",")))
      points;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_ingest.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "  wrote BENCH_ingest.json (%d points)\n" (List.length points)
  end

(* --- P6: the wire-facing server and group commit -------------------------- *)

(* Durable throughput is fsync-bound: one transaction per fsync caps the
   commit rate near 1/t_fsync however cheap admission is.  Group commit
   appends a whole admitted batch in one I/O and shares one fsync, so
   throughput should scale with batch size until admission cost takes
   over.  Measured wall-clock (not bechamel): each point is a complete
   store lifetime — init, commit stream, close — and the server points
   drive real sockets, so per-run OLS would mostly fit setup noise. *)
let exp_p6 ~smoke ~json () =
  let module Server = Bounds_net.Server in
  let module Client = Bounds_net.Client in
  let module Proto = Bounds_net.Proto in
  let module Traffic = Bounds_workload.Traffic in
  header "P6   concurrent server: group commit and snapshot-isolated reads"
    "claim: one shared fsync amortizes durability across a batch of\n\
     admitted transactions (>= 2x past batch size 4 with fsync on);\n\
     the server sustains concurrent clients, readers on immutable\n\
     snapshots, writers coalesced into shared commits.";
  (* per-transaction admission is O(|D|) (P1/P4's story), so a long
     insert stream buries the fsync under admission cost; the stream is
     kept short so the point being measured — one fsync shared across a
     batch — stays the dominant term *)
  let txns_total = if smoke then 64 else 128 in
  let batch_sizes = [ 1; 2; 4; 8; 16 ] in
  let client_counts = if smoke then [ 1; 4; 8 ] else [ 1; 2; 4; 8; 16 ] in
  let requests_per_client = if smoke then 25 else 150 in
  let find_unit base =
    Bounds_model.Instance.fold
      (fun e acc ->
        if Entry.has_class e (Oclass.of_string "orgunit") then Some (Entry.id e)
        else acc)
      base None
    |> Option.get
  in
  let mk_person id =
    Entry.make ~id
      ~rdn:(Printf.sprintf "uid=p6b%d" id)
      ~classes:(Oclass.set_of_list [ "person"; "top" ])
      [
        (Attr.of_string "uid", Value.String (Printf.sprintf "p6b%d" id));
        (Attr.of_string "name", Value.String "bench");
      ]
  in
  (* a fresh store on real files, small |D| so fsync dominates admission *)
  let fresh_store ~fsync name =
    let root =
      Filename.concat (Filename.get_temp_dir_name ()) ("bounds-bench-" ^ name)
    in
    let io = Sio.real ~fsync ~root () in
    List.iter io.Sio.remove
      [ Store.schema_file; Store.checkpoint_file; Store.delta_file; Store.wal_file ];
    let base = WP.generate ~seed:6 ~units:3 ~persons_per_unit:3 () in
    let st = Result.get_ok (Store.init io WP.schema base) in
    (st, find_unit base, Bounds_model.Instance.size base)
  in
  (* commit [txns_total] single-insert transactions in groups of [b];
     b = 1 is the unbatched baseline (plain applies, one fsync each) *)
  let commit_rate ~fsync b =
    let best = ref 0. in
    for rep = 0 to 2 do
      let st, unit, _ =
        fresh_store ~fsync (Printf.sprintf "p6gc%b-%d-%d" fsync b rep)
      in
      let t0 = Unix.gettimeofday () in
      let i = ref 0 in
      while !i < txns_total do
        let k = min b (txns_total - !i) in
        let run () =
          for j = 0 to k - 1 do
            ignore
              (Store.apply st
                 [
                      Update.Insert
                        { parent = Some unit; entry = mk_person (5_000_000 + !i + j) };
                    ])
          done
        in
        if b = 1 then run () else ignore (Store.batch st run);
        i := !i + k
      done;
      let dt = Unix.gettimeofday () -. t0 in
      Store.close st;
      best := Float.max !best (float_of_int txns_total /. dt)
    done;
    !best
  in
  let gc_fsync = List.map (fun b -> (b, commit_rate ~fsync:true b)) batch_sizes in
  let gc_nofsync =
    List.map (fun b -> (b, commit_rate ~fsync:false b)) batch_sizes
  in
  let rate_at l b = List.assoc b l in
  Printf.printf "  group commit, %d single-insert txns (store-level, real files):\n"
    txns_total;
  Printf.printf "  %8s  %14s  %14s  %9s\n" "batch" "fsync on" "fsync off"
    "on-gain";
  List.iter
    (fun b ->
      Printf.printf "  %8d  %9.0f tx/s  %9.0f tx/s  %s\n" b (rate_at gc_fsync b)
        (rate_at gc_nofsync b)
        (pp_ratio (rate_at gc_fsync b /. rate_at gc_fsync 1)))
    batch_sizes;
  (* the server: mixed traffic from concurrent clients, fsync on *)
  let serve_point ~fsync clients =
    let st, _, _ = fresh_store ~fsync (Printf.sprintf "p6srv%b-%d" fsync clients) in
    let srv = Server.start ~port:0 ~batch_max:64 st in
    let port = Server.port srv in
    let report =
      match
        Traffic.run ~port ~clients ~requests:requests_per_client
          ~write_ratio:0.25 ~seed:(1 + clients)
          ~tag:(Printf.sprintf "p6c%d" clients)
          ()
      with
      | Ok r -> r
      | Error e -> failwith ("P6 traffic: " ^ e)
    in
    (match Client.connect ~port ~retries:10 () with
    | Ok c ->
        ignore (Client.request c Proto.Shutdown);
        Client.close c
    | Error e -> failwith ("P6 shutdown: " ^ e));
    Server.wait srv;
    let stats = Server.stats srv in
    Store.close st;
    (report, stats)
  in
  let served = List.map (fun c -> (c, serve_point ~fsync:true c)) client_counts in
  let max_clients = List.fold_left max 0 client_counts in
  let nofsync_report, _ = serve_point ~fsync:false max_clients in
  Printf.printf
    "  served mixed traffic, %d requests/client, 25%% writes (fsync on):\n"
    requests_per_client;
  Printf.printf "  %8s  %11s  %9s  %9s  %9s  %9s\n" "clients" "req/s" "p50 ms"
    "p95 ms" "commits" "txns";
  List.iter
    (fun (c, ((r : Traffic.report), (s : Server.stats))) ->
      Printf.printf "  %8d  %11.0f  %9.3f  %9.3f  %9d  %9d\n" c
        (Traffic.throughput r) r.Traffic.p50_ms r.Traffic.p95_ms
        s.Server.batches s.Server.batched)
    served;
  let r_max, s_max = List.assoc max_clients served in
  Printf.printf
    "  shape: fsync-on group commit gains %.1fx at batch 4 and %.1fx at 16\n\
    \  over unbatched (fsync off shows the non-durability ceiling); at %d\n\
    \  clients the writer coalesced %d transactions into %d shared commits\n\
    \  (%.1f txns/fsync); fsync off at %d clients serves %.0f req/s vs %.0f\n"
    (rate_at gc_fsync 4 /. rate_at gc_fsync 1)
    (rate_at gc_fsync 16 /. rate_at gc_fsync 1)
    max_clients s_max.Server.batched s_max.Server.batches
    (if s_max.Server.batches = 0 then 0.
     else float_of_int s_max.Server.batched /. float_of_int s_max.Server.batches)
    max_clients
    (Traffic.throughput nofsync_report)
    (Traffic.throughput r_max);
  if json then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"experiment\": \"P6\",\n";
    Buffer.add_string buf "  \"workload\": \"white-pages\",\n";
    Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
    Buffer.add_string buf
      (Printf.sprintf "  \"peak_heap_bytes\": %d,\n" (peak_heap_bytes ()));
    Buffer.add_string buf (Printf.sprintf "  \"txns\": %d,\n" txns_total);
    Buffer.add_string buf
      (Printf.sprintf "  \"batch4_speedup_fsync\": %.3f,\n"
         (rate_at gc_fsync 4 /. rate_at gc_fsync 1));
    Buffer.add_string buf
      (Printf.sprintf "  \"batch16_speedup_fsync\": %.3f,\n"
         (rate_at gc_fsync 16 /. rate_at gc_fsync 1));
    Buffer.add_string buf (Printf.sprintf "  \"max_clients\": %d,\n" max_clients);
    Buffer.add_string buf
      (Printf.sprintf "  \"throughput_at_max_clients\": %.1f,\n"
         (Traffic.throughput r_max));
    Buffer.add_string buf
      (Printf.sprintf "  \"txns_per_commit_at_max_clients\": %.2f,\n"
         (if s_max.Server.batches = 0 then 0.
          else
            float_of_int s_max.Server.batched /. float_of_int s_max.Server.batches));
    Buffer.add_string buf "  \"points\": [\n";
    let gc_points series l =
      List.map
        (fun (b, rate) ->
          Printf.sprintf
            "    { \"series\": \"%s\", \"n\": %d, \"txns_per_sec\": %.1f }"
            series b rate)
        l
    in
    let serve_points =
      List.map
        (fun (c, (r, _)) ->
          Printf.sprintf
            "    { \"series\": \"serve-fsync\", \"n\": %d, \"req_per_sec\": \
             %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f }"
            c (Traffic.throughput r) r.Traffic.p50_ms r.Traffic.p95_ms)
        served
      @ [
          Printf.sprintf
            "    { \"series\": \"serve-nofsync\", \"n\": %d, \"req_per_sec\": \
             %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f }"
            max_clients
            (Traffic.throughput nofsync_report)
            nofsync_report.Traffic.p50_ms nofsync_report.Traffic.p95_ms;
        ]
    in
    let points =
      gc_points "group-commit-fsync" gc_fsync
      @ gc_points "group-commit-nofsync" gc_nofsync
      @ serve_points
    in
    Buffer.add_string buf (String.concat ",\n" points);
    Buffer.add_string buf "\n  ]\n}\n";
    let oc = open_out "BENCH_serve.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "  wrote BENCH_serve.json (%d points)\n" (List.length points)
  end

(* --- P7: million-entry scale ----------------------------------------------- *)

(* The scale wall.  Every other experiment sweeps |D| in the thousands;
   P7 drives one complete store lifecycle — streaming bulk load, query,
   single-entry transactions, O(Δ) delta checkpoint vs O(|D|) collapse,
   trusted recovery — up to 10^6 entries, and reports wall-clock plus
   the peak-heap high-water mark at each size.  Single timed runs, not
   bechamel: a point is seconds of work and the sweep itself is the
   measurement, so per-run OLS would mostly re-time the page cache. *)
let exp_p7 ~smoke ~json () =
  header "P7   million-entry scale (interning, word kernels, delta checkpoints)"
    "claim: with hash-consed strings, word-level bitset kernels and O(delta)\n\
     incremental checkpoints, a 10^6-entry directory loads, queries, absorbs\n\
     transactions, compacts and recovers in time linear in the touched data,\n\
     and in heap linear in |D| with a shared-string constant.";
  let sizes = if smoke then [ 1_000; 5_000 ] else [ 10_000; 100_000; 1_000_000 ] in
  let apply_txns = if smoke then 20 else 100 in
  let seed_n = 200 in
  let at = Attr.of_string and cl = Oclass.of_string in
  let queries =
    [
      Query.select_class (cl "person");
      Query.Select
        (Filter.And
           [ Filter.class_eq (cl "person"); Filter.Present (at "mail") ]);
      Query.Chi
        ( Query.Descendant,
          Query.select_class (cl "orgunit"),
          Query.select_class (cl "person") );
    ]
  in
  let find_unit base =
    Bounds_model.Instance.fold
      (fun e acc ->
        if Entry.has_class e (Oclass.of_string "orgunit") then Some (Entry.id e)
        else acc)
      base None
    |> Option.get
  in
  let mk_person id =
    Entry.make ~id
      ~rdn:(Printf.sprintf "uid=p7b%d" id)
      ~classes:(Oclass.set_of_list [ "person"; "top" ])
      [
        (Attr.of_string "uid", Value.String (Printf.sprintf "p7b%d" id));
        (Attr.of_string "name", Value.String "bench");
      ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let pp_s s = pp_time (s *. 1e9) in
  let run_point n =
    let base = WP.generate ~seed:7 ~units:(seed_n / 25) ~persons_per_unit:20 () in
    let unit = find_unit base in
    let io = p4_io (Printf.sprintf "p7-%d" n) in
    let st = Result.get_ok (Store.init io WP.schema base) in
    let total = Bounds_model.Instance.size base + n in
    let t_load, loaded =
      time (fun () ->
          Result.get_ok
            (Store.load st (fun add ->
                 let rec go i =
                   if i = n then Ok ()
                   else
                     match add ~parent:(Some unit) (mk_person (6_000_000 + i)) with
                     | Ok () -> go (i + 1)
                     | Error _ as e -> e
                 in
                 go 0)))
    in
    assert (loaded = n);
    let dir = Store.directory st in
    let t_query, _ =
      time (fun () -> List.iter (fun q -> ignore (Directory.query dir q)) queries)
    in
    let t_apply, _ =
      time (fun () ->
          for i = 0 to apply_txns - 1 do
            ignore
              (Store.apply st
                 [
                      Update.Insert
                        { parent = Some unit; entry = mk_person (7_000_000 + i) };
                    ])
          done)
    in
    (* the delta fold sees the [apply_txns]-record log; one more accepted
       transaction afterwards gives the collapse a chain AND a tail *)
    let t_delta, _ = time (fun () -> Store.checkpoint st) in
    assert (Store.delta_segments st = 1);
    ignore
      (Store.apply st
                 [ Update.Insert { parent = Some unit; entry = mk_person 7_999_999 } ]);
    let t_full, _ = time (fun () -> Store.checkpoint ~full:true st) in
    assert (Store.delta_segments st = 0);
    Store.close st;
    let t_recover, _ =
      time (fun () ->
          let st', report = Result.get_ok (Store.open_ io) in
          if report.Store.tail <> Store.Clean then
            failwith "P7: clean store recovered as damaged";
          let got =
            Bounds_model.Instance.size (Directory.instance (Store.directory st'))
          in
          if got <> total + apply_txns + 1 then
            failwith
              (Printf.sprintf "P7: recovered %d entries, expected %d" got
                 (total + apply_txns + 1));
          Store.close st')
    in
    (n, t_load, t_query, t_apply, t_delta, t_full, t_recover, peak_heap_bytes ())
  in
  let results = List.map run_point sizes in
  Printf.printf
    "  store lifecycle per size (load n, %d queries, %d txns, delta + full\n\
    \  checkpoint, trusted recovery); peak heap is the process high-water mark:\n"
    (List.length queries) apply_txns;
  Printf.printf "  %8s  %10s  %9s  %9s  %9s  %9s  %9s  %11s\n" "|D|" "load"
    "query" "apply" "delta-ck" "full-ck" "recover" "peak heap";
  List.iter
    (fun (n, l, q, a, d, f, r, h) ->
      Printf.printf "  %8d  %s  %s  %s  %s  %s  %s  %s\n" n (pp_s l) (pp_s q)
        (pp_s a) (pp_s d) (pp_s f) (pp_s r) (pp_bytes h))
    results;
  let interned = Intern.stats () in
  let intern_saved =
    List.fold_left (fun acc s -> acc + s.Intern.saved_bytes) 0 interned
  in
  (match List.rev results with
  | (n, l, _, a, d, f, r, _) :: _ ->
      Printf.printf
        "  shape: at |D| = %d the store loads %.0f entries/s, absorbs %.0f tx/s,\n\
        \  delta-compacts a %d-record log %.1fx faster than a full collapse, and\n\
        \  recovers in %s; interning saved %.1f MiB of duplicate strings\n"
        n
        (float_of_int n /. l)
        (float_of_int apply_txns /. a)
        apply_txns (f /. d) (String.trim (pp_s r))
        (float_of_int intern_saved /. float_of_int (1 lsl 20))
  | [] -> ());
  if json then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"experiment\": \"P7\",\n";
    Buffer.add_string buf
      "  \"workload\": \"white-pages seed + synthetic persons\",\n";
    Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
    Buffer.add_string buf
      (Printf.sprintf "  \"peak_heap_bytes\": %d,\n" (peak_heap_bytes ()));
    Buffer.add_string buf
      (Printf.sprintf "  \"max_size\": %d,\n" (List.fold_left max 0 sizes));
    Buffer.add_string buf (Printf.sprintf "  \"apply_txns\": %d,\n" apply_txns);
    Buffer.add_string buf
      (Printf.sprintf "  \"intern_saved_bytes\": %d,\n" intern_saved);
    Buffer.add_string buf "  \"intern_pools\": [\n";
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf
             "    { \"pool\": \"%s\", \"distinct\": %d, \"hits\": %d, \
              \"saved_bytes\": %d }%s\n"
             s.Intern.pool_name s.Intern.distinct s.Intern.hits
             s.Intern.saved_bytes
             (if i = List.length interned - 1 then "" else ",")))
      interned;
    Buffer.add_string buf "  ],\n";
    Buffer.add_string buf "  \"points\": [\n";
    List.iteri
      (fun i (n, l, q, a, d, f, r, h) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    { \"n\": %d, \"load_s\": %.3f, \"load_entries_per_sec\": \
              %.0f, \"query_s\": %.6f, \"apply_s\": %.3f, \
              \"apply_txns_per_sec\": %.0f, \"delta_ckpt_s\": %.6f, \
              \"full_ckpt_s\": %.3f, \"recover_s\": %.3f, \
              \"peak_heap_bytes\": %d }%s\n"
             n l
             (float_of_int n /. l)
             q a
             (float_of_int apply_txns /. a)
             d f r h
             (if i = List.length results - 1 then "" else ",")))
      results;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_scale.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "  wrote BENCH_scale.json (%d points)\n" (List.length results)
  end

(* --- P8: steady-state write throughput (chunked COW versions) -------------- *)

(* The write wall.  Before chunked copy-on-write versions, every accepted
   transaction paid O(|D|) — flat-array blits for the index, a
   [Hashtbl.copy] per value table — which pinned a 10^6-entry session at
   ~1 tx/s however small the transaction.  P8 drives a live [Directory]
   session (no durability in the loop: P4/P7 own that axis) through a
   steady alternation of single-entry insert/delete transactions and
   reports transactions per second at 10^4 .. 10^6, next to a
   rebuild-per-transaction baseline that stands in for the old O(|D|)
   write path.  Single timed runs like P7: the sweep is the measurement. *)
let exp_p8 ~smoke ~json () =
  header "P8   steady-state write throughput (chunked COW index versions)"
    "claim: with chunked copy-on-write versions (index spine + persistent\n\
     rank/value maps), a small transaction costs O(delta + touched chunks)\n\
     instead of O(|D|), so steady-state writes clear 100 tx/s at 10^6\n\
     entries - the old flat-copy path managed ~1 tx/s.";
  let sizes =
    if smoke then [ 1_000; 5_000 ] else [ 10_000; 100_000; 1_000_000 ]
  in
  let iterations = if smoke then 20 else 100 in
  let baseline_txns = 2 in
  let find_unit base =
    Bounds_model.Instance.fold
      (fun e acc ->
        if Entry.has_class e (Oclass.of_string "orgunit") then Some (Entry.id e)
        else acc)
      base None
    |> Option.get
  in
  let mk_person id =
    Entry.make ~id
      ~rdn:(Printf.sprintf "uid=p8b%d" id)
      ~classes:(Oclass.set_of_list [ "person"; "top" ])
      [
        (Attr.of_string "uid", Value.String (Printf.sprintf "p8b%d" id));
        (Attr.of_string "name", Value.String "bench");
      ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let pp_s s = pp_time (s *. 1e9) in
  let run_point n =
    let units = max 1 (n / 21) in
    let base = WP.generate ~seed:8 ~units ~persons_per_unit:20 () in
    let unit = find_unit base in
    let n_real = Bounds_model.Instance.size base in
    let dir = Result.get_ok (Directory.open_ WP.schema base) in
    (* isolate points from each other: without this, the timed loop at
       10^6 pays major-GC marking over the previous points' dead heap *)
    Gc.compact ();
    (* steady state: insert a person, delete it again - every pair of
       transactions returns the session to |D| = n, so the loop measures
       sustained write cost at size, not growth *)
    let dir = ref dir in
    let ok what = function
      | d, Admission.Accepted _ -> d
      | _, Admission.Rejected _ -> failwith ("P8: rejected " ^ what)
    in
    (* one warm pair outside the clock: first-touch materialization *)
    dir := ok "warm ins" (Directory.apply !dir
             [ Update.Insert { parent = Some unit; entry = mk_person 8_999_999 } ]);
    dir := ok "warm del" (Directory.apply !dir [ Update.Delete 8_999_999 ]);
    let t_steady, () =
      time (fun () ->
          for i = 0 to iterations - 1 do
            let id = 8_000_000 + i in
            dir :=
              ok "insert"
                (Directory.apply !dir
                   [ Update.Insert { parent = Some unit; entry = mk_person id } ]);
            dir := ok "delete" (Directory.apply !dir [ Update.Delete id ])
          done)
    in
    let txns = 2 * iterations in
    (* the old write path rebuilt/copied every O(|D|) structure per
       transaction; a fresh index + value-table build per transaction is
       that cost, measured honestly at this size *)
    let t_baseline, () =
      time (fun () ->
          let inst = ref (Directory.instance !dir) in
          for i = 0 to baseline_txns - 1 do
            let id = 8_100_000 + i in
            let ops =
              [ Update.Insert { parent = Some unit; entry = mk_person id } ]
            in
            inst := Result.get_ok (Update.apply !inst ops);
            let ix = Index.create !inst in
            ignore (Vindex.create ix)
          done)
    in
    Directory.close !dir;
    ( n_real,
      txns,
      t_steady,
      float_of_int txns /. t_steady,
      float_of_int baseline_txns /. t_baseline,
      peak_heap_bytes () )
  in
  let results = List.map run_point sizes in
  Printf.printf
    "  steady-state single-entry transactions against a live session\n\
    \  (insert+delete pairs; baseline rebuilds index+vindex per txn):\n";
  Printf.printf "  %8s  %8s  %12s  %10s  %12s  %8s\n" "|D|" "txns" "elapsed"
    "tx/s" "rebuild tx/s" "speedup";
  List.iter
    (fun (n, txns, t, rate, base_rate, _) ->
      Printf.printf "  %8d  %8d  %s  %10.0f  %12.2f  %7.0fx\n" n txns (pp_s t)
        rate base_rate (rate /. base_rate))
    results;
  (match List.rev results with
  | (n, _, _, rate, base_rate, _) :: _ ->
      Printf.printf
        "  shape: at |D| = %d the session absorbs %.0f tx/s steady-state;\n\
        \  the per-transaction rebuild baseline manages %.2f tx/s (%.0fx)\n"
        n rate base_rate (rate /. base_rate)
  | [] -> ());
  if json then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"experiment\": \"P8\",\n";
    Buffer.add_string buf
      "  \"workload\": \"white-pages; steady insert+delete pairs\",\n";
    Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
    Buffer.add_string buf
      (Printf.sprintf "  \"iterations\": %d,\n" iterations);
    Buffer.add_string buf
      (Printf.sprintf "  \"peak_heap_bytes\": %d,\n" (peak_heap_bytes ()));
    Buffer.add_string buf "  \"points\": [\n";
    List.iteri
      (fun i (n, txns, t, rate, base_rate, heap) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    { \"n\": %d, \"txns\": %d, \"elapsed_s\": %.3f, \
              \"tx_per_sec\": %.1f, \"rebuild_tx_per_sec\": %.3f, \
              \"speedup_vs_rebuild\": %.1f, \"peak_heap_bytes\": %d }%s\n"
             n txns t rate base_rate (rate /. base_rate) heap
             (if i = List.length results - 1 then "" else ",")))
      results;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_write.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "  wrote BENCH_write.json (%d points)\n" (List.length results)
  end

(* --- W1: the chase coverage statistic ------------------------------------- *)

let exp_w1 () =
  header "W1   consistency-decision coverage (reconstruction quality)"
    "claim: decide() settles (consistent-with-witness or\n\
     inconsistent-with-proof) virtually all random schemas; the\n\
     unresolved long tail is rare and reported, never guessed.";
  let run_config ~label ~n_req ~n_forb =
    let total = 3000 in
    let consistent = ref 0 and inconsistent = ref 0 and unresolved = ref 0 in
    for seed = 0 to total - 1 do
      let s =
        Bounds_workload.Gen.random_schema ~seed ~n_classes:5 ~n_req ~n_forb
          ~n_required_classes:2
      in
      match Consistency.decide s with
      | Consistency.Consistent _ -> incr consistent
      | Consistency.Inconsistent _ -> incr inconsistent
      | Consistency.Unresolved _ -> incr unresolved
    done;
    Printf.printf
      "  %-18s %d schemas: %4d consistent (verified witness), %4d inconsistent\n\
      \  %-18s (machine-checked proof), %d unresolved (%.3f%%)\n" label total
      !consistent !inconsistent "" !unresolved
      (100. *. float_of_int !unresolved /. float_of_int total)
  in
  run_config ~label:"dense (5 req/3 forb)" ~n_req:5 ~n_forb:3;
  run_config ~label:"sparse (2 req/1 forb)" ~n_req:2 ~n_forb:1

(* --- P9: WAL-shipped replica --------------------------------------------- *)

let exp_p9 ~smoke ~json () =
  let module Server = Bounds_net.Server in
  let module Replica = Bounds_net.Replica in
  let module Client = Bounds_net.Client in
  let module Proto = Bounds_net.Proto in
  let module Traffic = Bounds_workload.Traffic in
  header "P9   WAL-shipped replica: replication throughput and lag"
    "claim: shipping every acknowledged WAL record keeps a read replica\n\
     within a small bounded lag of the primary under a sustained write\n\
     stream - the replica applies through trusted replay (admission\n\
     happened at the primary's acknowledge), so apply cost stays below\n\
     admission cost and the replica catches up promptly once the\n\
     stream quiesces.";
  let client_counts = if smoke then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let requests_per_client = if smoke then 40 else 200 in
  let fresh_io name =
    let root =
      Filename.concat (Filename.get_temp_dir_name ()) ("bounds-bench-" ^ name)
    in
    let io = Sio.real ~fsync:true ~root () in
    List.iter io.Sio.remove
      [ Store.schema_file; Store.checkpoint_file; Store.delta_file; Store.wal_file ];
    io
  in
  let pct sorted p =
    if Array.length sorted = 0 then 0
    else
      sorted.(min
                (Array.length sorted - 1)
                (int_of_float (ceil (p *. float_of_int (Array.length sorted)) -. 1.)))
  in
  (* one primary+replica pair per point: write-only traffic at the
     primary while a sampler thread reads the lsn gap, then the time
     for the replica to drain the residual lag once writes stop *)
  let point clients =
    let io = fresh_io (Printf.sprintf "p9p-%d" clients) in
    let base = WP.generate ~seed:9 ~units:3 ~persons_per_unit:3 () in
    let st = Result.get_ok (Store.init io WP.schema base) in
    let srv = Server.start ~port:0 ~batch_max:64 ~replicate:true st in
    let port = Server.port srv in
    let rio = fresh_io (Printf.sprintf "p9r-%d" clients) in
    let rep = Replica.start ~port:0 ~primary_port:port rio in
    let deadline = Unix.gettimeofday () +. 30. in
    while
      (Replica.stats rep).Replica.boots = 0 && Unix.gettimeofday () < deadline
    do
      Thread.delay 0.005
    done;
    if (Replica.stats rep).Replica.boots = 0 then failwith "P9: bootstrap stuck";
    let lags = ref [] in
    let sampling = Atomic.make true in
    let sampler =
      Thread.create
        (fun () ->
          while Atomic.get sampling do
            let lag =
              Store.lsn st - (Replica.stats rep).Replica.applied_lsn
            in
            lags := max 0 lag :: !lags;
            Thread.delay 0.002
          done)
        ()
    in
    let t0 = Unix.gettimeofday () in
    let report =
      match
        Traffic.run ~port ~clients ~requests:requests_per_client
          ~write_ratio:1.0 ~seed:(9 + clients)
          ~tag:(Printf.sprintf "p9c%d" clients)
          ()
      with
      | Ok r -> r
      | Error e -> failwith ("P9 traffic: " ^ e)
    in
    let t_traffic = Unix.gettimeofday () -. t0 in
    let final_lsn = Store.lsn st in
    let tc0 = Unix.gettimeofday () in
    while
      (Replica.stats rep).Replica.applied_lsn < final_lsn
      && Unix.gettimeofday () < tc0 +. 30.
    do
      Thread.delay 0.001
    done;
    let catchup_ms = (Unix.gettimeofday () -. tc0) *. 1000. in
    let applied = (Replica.stats rep).Replica.applied_lsn in
    if applied < final_lsn then
      failwith
        (Printf.sprintf "P9: replica stuck at lsn %d of %d" applied final_lsn);
    Atomic.set sampling false;
    Thread.join sampler;
    (* the replica must answer the same count the primary does *)
    let count_at p =
      match Client.connect ~port:p ~retries:10 () with
      | Error e -> failwith ("P9 count: " ^ e)
      | Ok c ->
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              match Client.request c (Proto.Query "(objectClass=person)") with
              | Ok (Proto.Reply body) -> (
                  match String.index_opt body '\n' with
                  | Some i -> String.sub body 0 i
                  | None -> body)
              | Ok (Proto.Failed m) -> failwith ("P9 count: " ^ m)
              | Error e -> failwith ("P9 count: " ^ e))
    in
    let pc = count_at port and rc = count_at (Replica.port rep) in
    if pc <> rc then
      failwith (Printf.sprintf "P9: diverged (primary %s, replica %s)" pc rc);
    Replica.stop rep;
    Replica.wait rep;
    (match Client.connect ~port ~retries:10 () with
    | Ok c ->
        ignore (Client.request c Proto.Shutdown);
        Client.close c
    | Error e -> failwith ("P9 shutdown: " ^ e));
    Server.wait srv;
    Store.close st;
    let sorted = Array.of_list !lags in
    Array.sort compare sorted;
    let writes = clients * requests_per_client in
    ( clients,
      float_of_int writes /. t_traffic,
      Traffic.throughput report,
      pct sorted 0.5,
      pct sorted 0.95,
      (if Array.length sorted = 0 then 0 else sorted.(Array.length sorted - 1)),
      catchup_ms,
      final_lsn )
  in
  let points = List.map point client_counts in
  Printf.printf
    "  write-only traffic at the primary, %d requests/client (fsync on,\n\
    \  lag sampled every 2 ms as primary lsn - replica applied lsn):\n"
    requests_per_client;
  Printf.printf "  %8s  %11s  %9s  %9s  %9s  %11s\n" "clients" "writes/s"
    "lag p50" "lag p95" "lag max" "catchup ms";
  List.iter
    (fun (c, wps, _, p50, p95, mx, cms, _) ->
      Printf.printf "  %8d  %11.0f  %9d  %9d  %9d  %11.1f\n" c wps p50 p95 mx
        cms)
    points;
  let _, _, _, _, worst_p95, _, _, _ =
    List.fold_left
      (fun ((_, _, _, _, bp, _, _, _) as best)
           ((_, _, _, _, p95, _, _, _) as cand) ->
        if p95 > bp then cand else best)
      (List.hd points) (List.tl points)
  in
  Printf.printf
    "  shape: lag stays bounded (worst p95 %d records) while the primary\n\
    \  takes writes at full speed; every point converged to the primary's\n\
    \  final lsn and answered the same person count over the wire\n"
    worst_p95;
  if json then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"experiment\": \"P9\",\n";
    Buffer.add_string buf "  \"workload\": \"white-pages\",\n";
    Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
    Buffer.add_string buf
      (Printf.sprintf "  \"peak_heap_bytes\": %d,\n" (peak_heap_bytes ()));
    Buffer.add_string buf
      (Printf.sprintf "  \"requests_per_client\": %d,\n" requests_per_client);
    Buffer.add_string buf "  \"points\": [\n";
    let lines =
      List.map
        (fun (c, wps, rps, p50, p95, mx, cms, lsn) ->
          Printf.sprintf
            "    { \"series\": \"replicate\", \"n\": %d, \"writes_per_sec\": \
             %.1f, \"req_per_sec\": %.1f, \"lag_p50\": %d, \"lag_p95\": %d, \
             \"lag_max\": %d, \"catchup_ms\": %.1f, \"final_lsn\": %d }"
            c wps rps p50 p95 mx cms lsn)
        points
    in
    Buffer.add_string buf (String.concat ",\n" lines);
    Buffer.add_string buf "\n  ]\n}\n";
    let oc = open_out "BENCH_replicate.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "  wrote BENCH_replicate.json (%d points)\n"
      (List.length lines)
  end

(* --- driver ------------------------------------------------------------------ *)

let experiments ~smoke ~json =
  [
    ("T31", exp_t31);
    ("T42", exp_t42);
    ("T52", exp_t52);
    ("Q9", exp_q9);
    ("C31", exp_c31);
    ("A1", exp_a1);
    ("A2", exp_a2);
    ("A3", exp_a3);
    ("W1", exp_w1);
    ("P1", exp_p1 ~smoke ~json);
    ("P2", exp_p2 ~smoke ~json);
    ("P3", exp_p3 ~smoke ~json);
    ("P4", exp_p4 ~smoke ~json);
    ("P5", exp_p5 ~smoke ~json);
    ("P6", exp_p6 ~smoke ~json);
    ("P7", exp_p7 ~smoke ~json);
    ("P8", exp_p8 ~smoke ~json);
    ("P9", exp_p9 ~smoke ~json);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, names = List.partition (fun a -> String.length a > 1 && a.[0] = '-') args in
  let smoke = List.mem "--smoke" flags and json = List.mem "--json" flags in
  (match List.filter (fun f -> f <> "--smoke" && f <> "--json") flags with
  | [] -> ()
  | f :: _ ->
      Printf.eprintf "unknown flag %s (known: --smoke --json)\n" f;
      exit 2);
  let experiments = experiments ~smoke ~json in
  let selected = match names with [] -> List.map fst experiments | l -> l in
  Printf.printf
    "bounding-schemas benchmark harness - shapes, not absolute numbers,\n\
     are the reproduction target (see EXPERIMENTS.md)\n";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None -> Printf.printf "unknown experiment %s\n" name)
    selected
